//! Soft hitting sets (Definition 42, Lemmas 43/56 and Theorem 57).
//!
//! **Definition 42.** Given sets `{S_u}_{u∈L}` over a universe `R` of size
//! `N`, each of size at least `Δ`, a set `Z ⊆ R` is a *soft hitting set* if
//!
//! 1. `|Z| = O(N/Δ)`, and
//! 2. `Σ_{u∈L} SH(S_u, Z) = O(Δ·|L|)`, where `SH(S, Z) = 0` if `S ∩ Z ≠ ∅`
//!    and `|S|` otherwise.
//!
//! The point of the definition (vs. a plain hitting set) is property 1: the
//! selected set carries **no `log N` factor**. The emulator's level sets
//! (§5.1) only need un-hit neighborhoods to contribute `O(Δ)` edges each *in
//! total*, so a bounded mass of misses is acceptable — and dropping the
//! `log n` is what keeps the deterministic emulator at `O(n log log n)`
//! edges.
//!
//! **Construction** (Lemma 56 + Thm 57): every element `i` is selected iff
//! all `ℓ = ⌊log₂ Δ⌋` bits of its block are 1 (`Pr ≈ 1/Δ`); the random bits
//! come from a short PRG seed, which is then fixed chunk-by-chunk by
//! distributed conditional expectations on the potential `Φ = |Z| + χ·Σ SH`
//! with `χ = N/(Δ²·|L|)`. Here the conditional expectations are computed
//! exactly under independent bits (deciding one block at a time), which makes
//! the final potential at most its initial expectation
//! `E[Φ] ≤ (2 + e^{-1})·N/Δ < 3N/Δ` — hence both properties hold with
//! constant `c = 3`. Rounds are charged per Thm 57.

use cc_clique::RoundLedger;
use rand::Rng;

use crate::prg::BlockPrg;

/// A validated soft-hitting-set instance.
#[derive(Clone, Debug)]
pub struct SoftHittingInstance {
    universe: usize,
    delta: usize,
    sets: Vec<Vec<usize>>,
}

/// Errors raised when building a [`SoftHittingInstance`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SoftHittingError {
    /// `Δ` must be at least 1.
    DeltaZero,
    /// A set was smaller than `Δ`.
    SetTooSmall {
        /// Index of the offending set.
        index: usize,
        /// Its size.
        size: usize,
        /// The promised minimum `Δ`.
        delta: usize,
    },
    /// A set contained an element outside `0..N`.
    ElementOutOfRange {
        /// Index of the offending set.
        index: usize,
        /// The offending element.
        element: usize,
        /// Universe size `N`.
        universe: usize,
    },
}

impl std::fmt::Display for SoftHittingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftHittingError::DeltaZero => write!(f, "Δ must be at least 1"),
            SoftHittingError::SetTooSmall { index, size, delta } => {
                write!(f, "set {index} has {size} elements, below Δ = {delta}")
            }
            SoftHittingError::ElementOutOfRange {
                index,
                element,
                universe,
            } => write!(
                f,
                "set {index} contains {element}, outside the universe 0..{universe}"
            ),
        }
    }
}

impl std::error::Error for SoftHittingError {}

impl SoftHittingInstance {
    /// Validates and wraps an instance.
    ///
    /// # Errors
    ///
    /// Returns [`SoftHittingError`] when `Δ = 0`, a set is smaller than `Δ`,
    /// or an element falls outside `0..universe`.
    pub fn new(
        universe: usize,
        delta: usize,
        sets: Vec<Vec<usize>>,
    ) -> Result<Self, SoftHittingError> {
        if delta == 0 {
            return Err(SoftHittingError::DeltaZero);
        }
        for (index, s) in sets.iter().enumerate() {
            if s.len() < delta {
                return Err(SoftHittingError::SetTooSmall {
                    index,
                    size: s.len(),
                    delta,
                });
            }
            for &e in s {
                if e >= universe {
                    return Err(SoftHittingError::ElementOutOfRange {
                        index,
                        element: e,
                        universe,
                    });
                }
            }
        }
        Ok(SoftHittingInstance {
            universe,
            delta,
            sets,
        })
    }

    /// Universe size `N = |R|`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The minimum set size `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The sets `{S_u}`.
    pub fn sets(&self) -> &[Vec<usize>] {
        &self.sets
    }

    /// The normalization `χ = N / (Δ² |L|)` of Thm 57.
    fn chi(&self) -> f64 {
        self.universe as f64
            / (self.delta as f64 * self.delta as f64 * self.sets.len().max(1) as f64)
    }

    fn ell(&self) -> u32 {
        // Pr[select] = 2^{-ℓ} ∈ (1/(2Δ), 1/Δ]: ℓ = ⌈log₂ Δ⌉ ... choosing
        // ⌊log₂ Δ⌋ gives Pr ∈ [1/Δ, 2/Δ) — the constant folds into c.
        if self.delta <= 1 {
            0
        } else {
            usize::BITS - 1 - self.delta.leading_zeros()
        }
    }
}

/// The result of a soft-hitting-set computation.
#[derive(Clone, PartialEq, Debug)]
pub struct SoftHittingSet {
    /// The selected elements `Z ⊆ R`, sorted.
    pub set: Vec<usize>,
    /// The un-hit mass `Σ_u SH(S_u, Z)`.
    pub unhit_mass: usize,
    /// Number of sets not hit by `Z`.
    pub unhit_sets: usize,
}

impl SoftHittingSet {
    /// Checks Definition 42 with constant `c`: `|Z| ≤ c·N/Δ` and
    /// `Σ SH ≤ c·Δ·|L|`.
    pub fn verify(&self, inst: &SoftHittingInstance, c: f64) -> bool {
        let n = inst.universe() as f64;
        let delta = inst.delta() as f64;
        let l = inst.sets().len() as f64;
        (self.set.len() as f64) <= c * n / delta + c
            && (self.unhit_mass as f64) <= c * delta * l + c
    }

    fn from_selection(inst: &SoftHittingInstance, selected: &[bool]) -> SoftHittingSet {
        let set: Vec<usize> = (0..inst.universe()).filter(|&i| selected[i]).collect();
        let mut unhit_mass = 0usize;
        let mut unhit_sets = 0usize;
        for s in inst.sets() {
            if !s.iter().any(|&e| selected[e]) {
                unhit_mass += s.len();
                unhit_sets += 1;
            }
        }
        SoftHittingSet {
            set,
            unhit_mass,
            unhit_sets,
        }
    }
}

/// Deterministic soft hitting set by the method of conditional expectations
/// (Lemma 43). Always satisfies Definition 42 with `c = 3`.
///
/// Rounds charged: `O((log log n)³)` per Thm 57
/// ([`cc_clique::cost::model::conditional_expectation_rounds`]).
pub fn soft_hitting_set(inst: &SoftHittingInstance, ledger: &mut RoundLedger) -> SoftHittingSet {
    ledger.charge_conditional_expectation("soft hitting set selection", inst.universe() as u64);

    let n = inst.universe();
    let ell = inst.ell();
    let p = 0.5f64.powi(ell as i32); // Pr[element selected] before conditioning
    let chi = inst.chi();

    // element -> sets containing it
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (si, s) in inst.sets().iter().enumerate() {
        for &e in s {
            containing[e].push(si as u32);
        }
    }
    // Per-set state: hit flag and number of still-undecided elements.
    let mut hit = vec![false; inst.sets().len()];
    let mut undecided: Vec<usize> = inst.sets().iter().map(Vec::len).collect();
    let mut selected = vec![false; n];

    // Decide elements one block at a time. For element i:
    //   E[Φ | select i]   − E[Φ | reject i]
    // = 1 − χ · Σ_{unhit u ∋ i} |S_u| · (1−p)^{undecided_u − 1}
    // (selecting pays +1 in |Z| but zeroes the expected miss mass of every
    // set containing i; rejecting keeps those sets' miss probability, now
    // conditioned on one fewer undecided element).
    for i in 0..n {
        let mut gain = 0.0f64;
        for &si in &containing[i] {
            let si = si as usize;
            if !hit[si] {
                let others = undecided[si].saturating_sub(1) as i32;
                gain += inst.sets()[si].len() as f64 * (1.0 - p).powi(others);
            }
        }
        let select = chi * gain >= 1.0;
        if select {
            selected[i] = true;
            for &si in &containing[i] {
                hit[si as usize] = true;
            }
        }
        for &si in &containing[i] {
            undecided[si as usize] -= 1;
        }
    }
    SoftHittingSet::from_selection(inst, &selected)
}

/// Randomized soft hitting set (the un-derandomized core of Lemma 56):
/// selects each element with probability `2^{-ℓ} ≈ 1/Δ` using the given
/// RNG. Satisfies Definition 42 *in expectation*; callers retry if the
/// constant-`c` check fails (constant success probability).
pub fn soft_hitting_set_random(
    inst: &SoftHittingInstance,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> SoftHittingSet {
    ledger.charge_broadcast("announce soft hitting selection");
    let ell = inst.ell();
    let p = 0.5f64.powi(ell as i32);
    let selected: Vec<bool> = (0..inst.universe()).map(|_| rng.gen_bool(p)).collect();
    SoftHittingSet::from_selection(inst, &selected)
}

/// Seeded-PRG variant mirroring Lemma 56's `h_s(i)` hash-function family:
/// element `i` is selected iff the `ℓ` bits of block `i` under seed `s` are
/// all 1. Reproducible from the (short) seed.
pub fn soft_hitting_set_prg(
    inst: &SoftHittingInstance,
    seed: u64,
    ledger: &mut RoundLedger,
) -> SoftHittingSet {
    ledger.charge_broadcast("announce PRG seed");
    let prg = BlockPrg::new(seed);
    let ell = inst.ell();
    let selected: Vec<bool> = (0..inst.universe())
        .map(|i| prg.block_and(i as u64, ell))
        .collect();
    SoftHittingSet::from_selection(inst, &selected)
}

/// The §1.2 remark: under the *unbounded local computation* assumption, a
/// Nisan–Wigderson-style PRG with a logarithmic seed lets the whole seed be
/// fixed in `O(1)` rounds (`⌊log n⌋` bits per broadcast word): each node
/// evaluates the expensive PRG locally, and the conditional-expectation
/// tournament over seed chunks collapses to a constant number of rounds.
///
/// Functionally this returns the same set as [`soft_hitting_set`] (exact
/// conditional expectations); it differs only in the rounds charged — `O(1)`
/// instead of `O((log log n)³)` — making the trade-off of the remark
/// measurable. The paper prefers the Thm 57 route because unbounded local
/// computation, while standard, is "clearly less desirable".
pub fn soft_hitting_set_unbounded_local(
    inst: &SoftHittingInstance,
    ledger: &mut RoundLedger,
) -> SoftHittingSet {
    // Seed length O(log n) → ⌈seed/⌊log n⌋⌉ = O(1) broadcast rounds.
    ledger.charge("fix NW seed (unbounded local computation)", 2);
    let mut scratch = RoundLedger::new(ledger.n());
    soft_hitting_set(inst, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_instance(
        universe: usize,
        delta: usize,
        num_sets: usize,
        seed: u64,
    ) -> SoftHittingInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sets: Vec<Vec<usize>> = (0..num_sets)
            .map(|_| {
                let size = delta + rng.gen_range(0..delta);
                let mut s: Vec<usize> = Vec::new();
                while s.len() < size {
                    let e = rng.gen_range(0..universe);
                    if !s.contains(&e) {
                        s.push(e);
                    }
                }
                s
            })
            .collect();
        SoftHittingInstance::new(universe, delta, sets).unwrap()
    }

    #[test]
    fn deterministic_satisfies_definition() {
        for (universe, delta, sets, seed) in [
            (256usize, 16usize, 64usize, 1u64),
            (512, 8, 200, 2),
            (128, 32, 16, 3),
            (1024, 64, 300, 4),
        ] {
            let inst = random_instance(universe, delta, sets, seed);
            let mut ledger = RoundLedger::new(universe);
            let z = soft_hitting_set(&inst, &mut ledger);
            assert!(
                z.verify(&inst, 3.0),
                "N={universe} Δ={delta} |L|={sets}: |Z|={} unhit={}",
                z.set.len(),
                z.unhit_mass
            );
            assert!(ledger.total_rounds() > 0);
        }
    }

    #[test]
    fn deterministic_set_has_no_log_factor() {
        // The headline property: |Z| ≤ 3N/Δ (+3), strictly below the plain
        // hitting-set bound Θ(N ln N / Δ) for large N.
        let universe = 2048;
        let delta = 64;
        let inst = random_instance(universe, delta, 500, 7);
        let mut ledger = RoundLedger::new(universe);
        let z = soft_hitting_set(&inst, &mut ledger);
        let soft_bound = 3.0 * universe as f64 / delta as f64 + 3.0;
        let hard_bound = universe as f64 * (universe as f64).ln() / delta as f64;
        assert!((z.set.len() as f64) <= soft_bound);
        assert!((z.set.len() as f64) < hard_bound / 2.0);
    }

    #[test]
    fn randomized_matches_in_expectation() {
        let inst = random_instance(512, 16, 128, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut ledger = RoundLedger::new(512);
        // With constant success probability a single draw verifies with a
        // generous constant; retry a few times like the algorithms do.
        let ok = (0..10).any(|_| {
            let z = soft_hitting_set_random(&inst, &mut rng, &mut ledger);
            z.verify(&inst, 6.0)
        });
        assert!(ok);
    }

    #[test]
    fn prg_variant_is_reproducible() {
        let inst = random_instance(256, 8, 64, 11);
        let mut ledger = RoundLedger::new(256);
        let a = soft_hitting_set_prg(&inst, 5, &mut ledger);
        let b = soft_hitting_set_prg(&inst, 5, &mut ledger);
        let c = soft_hitting_set_prg(&inst, 6, &mut ledger);
        assert_eq!(a, b);
        assert!(a != c || a.set.is_empty() == c.set.is_empty());
    }

    #[test]
    fn empty_l_yields_small_set() {
        let inst = SoftHittingInstance::new(100, 10, Vec::new()).unwrap();
        let mut ledger = RoundLedger::new(100);
        let z = soft_hitting_set(&inst, &mut ledger);
        // No sets to hit: nothing forces selections.
        assert!(z.set.len() <= 31, "|Z| = {}", z.set.len());
        assert_eq!(z.unhit_mass, 0);
        assert!(z.verify(&inst, 3.0));
    }

    #[test]
    fn delta_one_selects_everything_needed() {
        let sets: Vec<Vec<usize>> = (0..8).map(|i| vec![i]).collect();
        let inst = SoftHittingInstance::new(8, 1, sets).unwrap();
        let mut ledger = RoundLedger::new(8);
        let z = soft_hitting_set(&inst, &mut ledger);
        // With Δ = 1, c·N/Δ ≥ N: selecting everything is allowed, and the
        // potential argument still bounds unhit mass by 3·|L|.
        assert!(z.verify(&inst, 3.0));
    }

    #[test]
    fn instance_validation() {
        assert!(matches!(
            SoftHittingInstance::new(10, 0, vec![]),
            Err(SoftHittingError::DeltaZero)
        ));
        assert!(matches!(
            SoftHittingInstance::new(10, 3, vec![vec![1, 2]]),
            Err(SoftHittingError::SetTooSmall { .. })
        ));
        assert!(matches!(
            SoftHittingInstance::new(10, 2, vec![vec![1, 10]]),
            Err(SoftHittingError::ElementOutOfRange { .. })
        ));
    }

    #[test]
    fn unbounded_local_variant_same_set_fewer_rounds() {
        let inst = random_instance(256, 16, 64, 15);
        let mut l1 = RoundLedger::new(256);
        let a = soft_hitting_set(&inst, &mut l1);
        let mut l2 = RoundLedger::new(256);
        let b = soft_hitting_set_unbounded_local(&inst, &mut l2);
        assert_eq!(a, b);
        assert_eq!(l2.total_rounds(), 2);
        assert!(l1.total_rounds() > l2.total_rounds());
    }

    #[test]
    fn unhit_statistics_are_consistent() {
        let inst = random_instance(128, 8, 40, 20);
        let mut ledger = RoundLedger::new(128);
        let z = soft_hitting_set(&inst, &mut ledger);
        // Recompute unhit mass independently.
        let mut mass = 0;
        let mut count = 0;
        for s in inst.sets() {
            if !s.iter().any(|e| z.set.binary_search(e).is_ok()) {
                mass += s.len();
                count += 1;
            }
        }
        assert_eq!(mass, z.unhit_mass);
        assert_eq!(count, z.unhit_sets);
    }
}
