//! Hitting sets: randomized (Lemma 8) and deterministic (Lemma 9).
//!
//! Given sets `{S_v}` over a universe of `N` elements, each of size at least
//! `k`, a *hitting set* `A` intersects every `S_v`.
//!
//! * [`random_hitting_set`] (Lemma 8): include each element independently
//!   with probability `c·ln N / k`; the result has size `O(N log N / k)` and
//!   hits every set w.h.p. — zero communication rounds.
//! * [`deterministic_hitting_set`] (Lemma 9, \[Parter–Yogev\]): a
//!   deterministic set of size `O(N log L / k)` computed here by the greedy
//!   max-coverage derandomization (the centralized equivalent of the
//!   conditional-expectation/PRG protocol; substitution documented in
//!   `DESIGN.md` §3), charged `O((log log n)³)` rounds per Lemma 9.

use cc_clique::RoundLedger;
use rand::Rng;

/// Errors for hitting-set construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HittingError {
    /// A set was smaller than the promised minimum size `k`.
    SetTooSmall {
        /// Index of the offending set.
        index: usize,
        /// Its actual size.
        size: usize,
        /// The promised minimum.
        k: usize,
    },
    /// An element was outside the universe `0..N`.
    ElementOutOfRange {
        /// Index of the offending set.
        index: usize,
        /// The offending element.
        element: usize,
        /// Universe size.
        universe: usize,
    },
}

impl std::fmt::Display for HittingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HittingError::SetTooSmall { index, size, k } => {
                write!(f, "set {index} has {size} elements, below the promised {k}")
            }
            HittingError::ElementOutOfRange {
                index,
                element,
                universe,
            } => write!(
                f,
                "set {index} contains {element}, outside the universe 0..{universe}"
            ),
        }
    }
}

impl std::error::Error for HittingError {}

fn validate(universe: usize, k: usize, sets: &[Vec<usize>]) -> Result<(), HittingError> {
    for (index, s) in sets.iter().enumerate() {
        if s.len() < k {
            return Err(HittingError::SetTooSmall {
                index,
                size: s.len(),
                k,
            });
        }
        for &e in s {
            if e >= universe {
                return Err(HittingError::ElementOutOfRange {
                    index,
                    element: e,
                    universe,
                });
            }
        }
    }
    Ok(())
}

/// `true` if `a` (sorted or not) hits every set.
pub fn hits_all(a: &[usize], sets: &[Vec<usize>]) -> bool {
    let mut marked = vec![false; a.iter().copied().max().map_or(0, |m| m + 1)];
    for &e in a {
        marked[e] = true;
    }
    sets.iter()
        .all(|s| s.iter().any(|&e| e < marked.len() && marked[e]))
}

/// Lemma 8: randomized hitting set by independent sampling at rate
/// `min(1, c·ln(N)/k)`. Costs zero rounds (sampling is local; one broadcast
/// round to announce membership is charged).
///
/// The result hits all sets w.h.p. but is **not** checked here; callers that
/// need certainty should retry (the failure probability is `N^{-(c-1)}`).
///
/// # Errors
///
/// Returns an error if a set is smaller than `k` or out of range.
pub fn random_hitting_set(
    universe: usize,
    k: usize,
    sets: &[Vec<usize>],
    c: f64,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> Result<Vec<usize>, HittingError> {
    validate(universe, k, sets)?;
    let p = (c * (universe.max(2) as f64).ln() / k.max(1) as f64).min(1.0);
    let a: Vec<usize> = (0..universe).filter(|_| rng.gen_bool(p)).collect();
    ledger.charge_broadcast("announce hitting set membership");
    Ok(a)
}

/// Lemma 9: deterministic hitting set of size `O(N log L / k)`.
///
/// Computed by greedy max-coverage: repeatedly pick the element contained in
/// the most not-yet-hit sets. Since every set has ≥ `k` of the `N` elements,
/// each pick hits at least a `k/N` fraction of the remainder, so at most
/// `⌈(N/k)·ln L⌉ + 1` picks are needed. Rounds are charged per Lemma 9
/// (`O((log log n)³)` via the PRG + conditional expectations protocol).
///
/// # Errors
///
/// Returns an error if a set is smaller than `k` or out of range.
pub fn deterministic_hitting_set(
    universe: usize,
    k: usize,
    sets: &[Vec<usize>],
    ledger: &mut RoundLedger,
) -> Result<Vec<usize>, HittingError> {
    validate(universe, k, sets)?;
    ledger.charge_conditional_expectation("deterministic hitting set", universe as u64);
    let mut unhit: Vec<bool> = vec![true; sets.len()];
    let mut remaining = sets.len();
    // element -> list of set indices containing it
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); universe];
    for (si, s) in sets.iter().enumerate() {
        for &e in s {
            containing[e].push(si as u32);
        }
    }
    let mut chosen = Vec::new();
    while remaining > 0 {
        // Pick the element covering the most unhit sets (ties: smallest id).
        let mut best = 0usize;
        let mut best_cover = 0usize;
        for e in 0..universe {
            let cover = containing[e]
                .iter()
                .filter(|&&si| unhit[si as usize])
                .count();
            if cover > best_cover {
                best_cover = cover;
                best = e;
            }
        }
        debug_assert!(best_cover > 0, "validated sets are nonempty");
        chosen.push(best);
        for &si in &containing[best] {
            if unhit[si as usize] {
                unhit[si as usize] = false;
                remaining -= 1;
            }
        }
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn intervals(universe: usize, k: usize) -> Vec<Vec<usize>> {
        (0..universe)
            .step_by(k)
            .map(|start| (start..start + k).map(|e| e % universe).collect())
            .collect()
    }

    #[test]
    fn random_hitting_hits_whp_and_is_small() {
        let universe = 400;
        let k = 40;
        let sets = intervals(universe, k);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ledger = RoundLedger::new(universe);
        let a = random_hitting_set(universe, k, &sets, 3.0, &mut rng, &mut ledger).unwrap();
        assert!(hits_all(&a, &sets));
        // Size ≤ 4 · c·N ln N / k with the seed above (expected ≈ 3N ln N/k ≈ 180).
        assert!(a.len() < 300, "size = {}", a.len());
        assert_eq!(ledger.total_rounds(), 1);
    }

    #[test]
    fn deterministic_hitting_hits_always() {
        let universe = 200;
        let k = 20;
        let sets = intervals(universe, k);
        let mut ledger = RoundLedger::new(universe);
        let a = deterministic_hitting_set(universe, k, &sets, &mut ledger).unwrap();
        assert!(hits_all(&a, &sets));
        // Disjoint intervals: exactly one pick each.
        assert_eq!(a.len(), sets.len());
        assert!(ledger.total_rounds() > 0);
    }

    #[test]
    fn deterministic_size_bound() {
        // Overlapping random-ish sets: size must stay ≤ (N/k)(ln L + 1) + 1.
        let universe = 128;
        let k = 16;
        let sets: Vec<Vec<usize>> = (0..60)
            .map(|i| {
                (0..k)
                    .map(|j| (i * 7 + j * 11) % universe)
                    .collect::<Vec<_>>()
            })
            .map(|mut s: Vec<usize>| {
                s.sort_unstable();
                s.dedup();
                while s.len() < k {
                    let next = (s.last().unwrap() + 1) % universe;
                    if !s.contains(&next) {
                        s.push(next);
                    }
                    s.sort_unstable();
                }
                s
            })
            .collect();
        let mut ledger = RoundLedger::new(universe);
        let a = deterministic_hitting_set(universe, k, &sets, &mut ledger).unwrap();
        assert!(hits_all(&a, &sets));
        let bound = (universe as f64 / k as f64) * ((sets.len() as f64).ln() + 1.0) + 1.0;
        assert!(
            (a.len() as f64) <= bound,
            "size {} exceeds greedy bound {bound}",
            a.len()
        );
    }

    #[test]
    fn undersized_set_rejected() {
        let sets = vec![vec![0, 1]];
        let mut ledger = RoundLedger::new(8);
        let err = deterministic_hitting_set(8, 3, &sets, &mut ledger).unwrap_err();
        assert!(matches!(err, HittingError::SetTooSmall { .. }));
    }

    #[test]
    fn out_of_range_rejected() {
        let sets = vec![vec![0, 99]];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ledger = RoundLedger::new(8);
        let err = random_hitting_set(8, 2, &sets, 2.0, &mut rng, &mut ledger).unwrap_err();
        assert!(matches!(err, HittingError::ElementOutOfRange { .. }));
    }

    #[test]
    fn empty_instance_is_trivial() {
        let mut ledger = RoundLedger::new(8);
        let a = deterministic_hitting_set(8, 1, &[], &mut ledger).unwrap();
        assert!(a.is_empty());
        assert!(hits_all(&a, &[]));
    }
}
