//! Read-once DNF formulas and their exact satisfaction probabilities.
//!
//! Lemma 56 of the paper expresses the two soft-hitting-set quantities as
//! (functions of) read-once DNFs over the PRG's output bits:
//!
//! * `f_i(y) = ⋀` (bits of block `i`) — "element `i` is selected";
//! * `g(y) = ⋁_{i ∈ S} f_i(y)` — "set `S` is hit".
//!
//! Because each bit appears in exactly one block, these are read-once
//! formulas, so a read-once-DNF-fooling PRG preserves their satisfaction
//! probabilities up to ε. This module represents such formulas explicitly and
//! computes their exact satisfaction probability under independent
//! `Bernoulli(p)` bits — the quantity the conditional-expectation
//! derandomization in [`crate::soft_hitting`] manipulates in closed form.

// BTreeSet, not HashSet: cc_derand is a result-affecting crate, where the
// `unordered-iter` rule bans unordered containers outright (membership-only
// uses included — the cheap blanket ban is what keeps the hazard class out;
// `DESIGN.md` §11.1).
use std::collections::BTreeSet;

/// A DNF formula: a disjunction of conjunctive clauses over boolean
/// variables identified by index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dnf {
    clauses: Vec<Vec<usize>>,
}

impl Dnf {
    /// Creates a DNF from its clauses (each clause a set of variable
    /// indices, interpreted as their conjunction). Empty clauses are allowed
    /// and are identically true.
    pub fn new(clauses: Vec<Vec<usize>>) -> Self {
        Dnf { clauses }
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<usize>] {
        &self.clauses
    }

    /// `true` if no variable occurs in more than one position (the
    /// *read-once* property required by the Gopalan et al. PRG).
    pub fn is_read_once(&self) -> bool {
        let mut seen = BTreeSet::new();
        for clause in &self.clauses {
            for &v in clause {
                if !seen.insert(v) {
                    return false;
                }
            }
        }
        true
    }

    /// Evaluates the formula on an assignment (indexable by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .any(|c| c.iter().all(|&v| assignment[v]))
    }

    /// Exact satisfaction probability when every variable is an independent
    /// `Bernoulli(p)`: `1 − ∏_c (1 − p^{|c|})`.
    ///
    /// Exact only for read-once formulas (clauses over disjoint variables).
    ///
    /// # Panics
    ///
    /// Panics if the formula is not read-once or `p ∉ [0, 1]`.
    pub fn sat_probability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(self.is_read_once(), "closed form requires read-once DNF");
        let mut unsat = 1.0f64;
        for clause in &self.clauses {
            unsat *= 1.0 - p.powi(clause.len() as i32);
        }
        1.0 - unsat
    }

    /// The "set `S` is hit" formula of Lemma 56: one clause per element of
    /// `s`, each clause the `ell` bits of that element's block.
    pub fn hitting_formula(s: &[usize], ell: usize) -> Dnf {
        let clauses = s
            .iter()
            .map(|&i| (0..ell).map(|b| i * ell + b).collect())
            .collect();
        Dnf::new(clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_once_detection() {
        assert!(Dnf::new(vec![vec![0, 1], vec![2]]).is_read_once());
        assert!(!Dnf::new(vec![vec![0, 1], vec![1]]).is_read_once());
        assert!(Dnf::new(vec![]).is_read_once());
    }

    #[test]
    fn eval_matches_semantics() {
        let f = Dnf::new(vec![vec![0, 1], vec![2]]);
        assert!(f.eval(&[true, true, false]));
        assert!(f.eval(&[false, false, true]));
        assert!(!f.eval(&[true, false, false]));
        // Empty clause is true.
        let t = Dnf::new(vec![vec![]]);
        assert!(t.eval(&[]));
        // Empty DNF is false.
        let f = Dnf::new(vec![]);
        assert!(!f.eval(&[]));
    }

    #[test]
    fn sat_probability_closed_form() {
        // Single clause of 2 vars: p².
        let f = Dnf::new(vec![vec![0, 1]]);
        assert!((f.sat_probability(0.5) - 0.25).abs() < 1e-12);
        // Two disjoint singleton clauses: 1 − (1−p)².
        let f = Dnf::new(vec![vec![0], vec![1]]);
        assert!((f.sat_probability(0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sat_probability_matches_exhaustive_enumeration() {
        let f = Dnf::new(vec![vec![0, 1], vec![2], vec![3, 4]]);
        let p: f64 = 0.3;
        let nvars = 5;
        let mut total = 0.0;
        for mask in 0..(1u32 << nvars) {
            let assignment: Vec<bool> = (0..nvars).map(|i| mask >> i & 1 == 1).collect();
            if f.eval(&assignment) {
                let mut prob = 1.0;
                for &b in &assignment {
                    prob *= if b { p } else { 1.0 - p };
                }
                total += prob;
            }
        }
        assert!((f.sat_probability(p) - total).abs() < 1e-12);
    }

    #[test]
    fn hitting_formula_shape() {
        let f = Dnf::hitting_formula(&[3, 5], 2);
        assert_eq!(f.clauses(), &[vec![6, 7], vec![10, 11]]);
        assert!(f.is_read_once());
    }

    /// The read-once check and everything derived from it must be
    /// bit-identical across independent runs (regression for the BTreeSet
    /// conversion — no container iteration order may reach a result).
    #[test]
    fn read_once_results_are_stable_across_runs() {
        let run = || {
            let mut out = Vec::new();
            for shift in 0..8usize {
                let f = Dnf::hitting_formula(&[shift, shift + 3, shift + 9], 3);
                out.push((f.is_read_once(), f.sat_probability(0.3).to_bits()));
            }
            out
        };
        assert_eq!(run(), run(), "must be bit-identical across runs");
    }

    #[test]
    #[should_panic(expected = "read-once")]
    fn non_read_once_probability_panics() {
        let f = Dnf::new(vec![vec![0], vec![0]]);
        let _ = f.sat_probability(0.5);
    }
}
