//! Torn-write regression suite: a snapshot truncated at *any* prefix
//! length must be rejected by every loader — never half-accepted.
//!
//! The writers guarantee a reader can only ever observe a whole file
//! (`write_atomic`: temp + fsync + rename), but defense in depth demands
//! the readers reject a torn file anyway: a pre-atomic-write save, a
//! partial `scp`, or a filesystem that lost the tail after a crash all
//! produce exactly these prefixes.

use std::sync::Arc;

use cc_core::{DistOracle, DistanceMatrix, Guarantee, PathOracle, PathProvider};
use cc_graphs::{Graph, StorageKind};
use cc_routes::PathStore;

fn build_oracles(n: usize) -> (DistOracle, PathOracle) {
    let g = Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let mut m = DistanceMatrix::new(n);
    let mut store = PathStore::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            m.improve(u, v, (v - u) as u32);
            m.improve(v, u, (v - u) as u32);
            let verts: Vec<u32> = (u as u32..=v as u32).collect();
            store.offer_walk(&g, (v - u) as u32, &verts);
        }
    }
    let dist = DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::SymmetricPacked);
    let dist_for_paths =
        DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::SymmetricPacked);
    let paths = PathOracle::new(
        dist_for_paths,
        vec![0u8; n * (n + 1) / 2],
        vec![PathProvider::Pairs(Arc::new(store))],
    );
    (dist, paths)
}

/// Every strict prefix must fail; the whole file must load.
fn assert_all_prefixes_rejected<T, E: std::fmt::Debug>(
    what: &str,
    bytes: &[u8],
    parse: impl Fn(&[u8]) -> Result<T, E>,
) {
    for cut in 0..bytes.len() {
        assert!(
            parse(&bytes[..cut]).is_err(),
            "{what}: truncation at {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
    assert!(
        parse(bytes).is_ok(),
        "{what}: the untruncated snapshot must load"
    );
}

#[test]
fn dist_oracle_v1_rejects_every_truncation() {
    let (dist, _) = build_oracles(10);
    let mut bytes = Vec::new();
    dist.save(&mut bytes).unwrap();
    assert_all_prefixes_rejected("CCDO v1", &bytes, DistOracle::from_snapshot_bytes);
}

#[test]
fn dist_oracle_v2_rejects_every_truncation() {
    let (dist, _) = build_oracles(10);
    let mut bytes = Vec::new();
    dist.save_v2(&mut bytes).unwrap();
    assert_all_prefixes_rejected("CCDO v2", &bytes, DistOracle::from_snapshot_bytes);
}

#[test]
fn path_oracle_v1_rejects_every_truncation() {
    let (_, paths) = build_oracles(8);
    let mut bytes = Vec::new();
    paths.save(&mut bytes).unwrap();
    assert_all_prefixes_rejected("CCRO v1", &bytes, PathOracle::from_snapshot_bytes);
}

#[test]
fn path_oracle_v2_rejects_every_truncation() {
    let (_, paths) = build_oracles(8);
    let mut bytes = Vec::new();
    paths.save_v2(&mut bytes).unwrap();
    assert_all_prefixes_rejected("CCRO v2", &bytes, PathOracle::from_snapshot_bytes);
}

/// The crash-safety contract end to end: interrupt `write_atomic` at any
/// byte (simulated by hand-writing the prefix where the temp file would
/// be renamed from) and the *serving path* never sees a loadable partial
/// file — either the old complete file or the new complete file.
#[test]
fn atomic_save_never_exposes_a_partial_file() {
    let (dist, _) = build_oracles(10);
    let dir = std::env::temp_dir().join(format!("cc_core_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("oracle.ccdo");

    // Old generation on disk, then a "crashed" overwrite: the torn bytes
    // land in a temp sibling only; the published path still loads old.
    dist.save_v2_to_path(&path).unwrap();
    let mut new_bytes = Vec::new();
    dist.save_v2(&mut new_bytes).unwrap();
    for cut in [0, 1, new_bytes.len() / 2, new_bytes.len() - 1] {
        let tmp = dir.join("oracle.ccdo.tmp.crashed");
        std::fs::write(&tmp, &new_bytes[..cut]).unwrap();
        // The published file is untouched by the torn temp write.
        DistOracle::load_from_path(&path).expect("published file stays whole");
        std::fs::remove_file(&tmp).unwrap();
    }

    // And a completed save over the same path still loads.
    dist.save_v2_to_path(&path).unwrap();
    DistOracle::load_from_path(&path).expect("rewritten file loads");
    std::fs::remove_file(&path).ok();
}
