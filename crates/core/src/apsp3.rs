//! `(3+ε)`-approximate APSP — the warm-up pipeline described at the start of
//! §4.3.
//!
//! Sample a hitting set `A` of size `O(√n)` so every vertex with a full
//! `(k, t)`-nearest list (`k = √n log n`) has an `A`-member among its
//! nearest. For a pair `(u, v)` within distance `t`: either `v` is among the
//! `(k,t)`-nearest of `u` (exact), or the nearest `A`-pivot `p_A(u)`
//! satisfies `d(u, p_A(u)) ≤ d(u,v)`, so routing through it costs at most
//! `3·d(u,v)`. Distances to `A` are `(1+ε/2)`-approximated via a bounded
//! hopset, giving `3+ε` overall. Long pairs come from the emulator.
//!
//! The full `(2+ε)` algorithm ([`crate::apsp2`]) refines exactly this
//! pipeline; keeping the `(3+ε)` variant makes the refinement measurable
//! (experiment T2 reports both).

use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::EmulatorParams;
use cc_graphs::{Dist, Graph, INF};
use cc_toolkit::knearest::{KNearest, Strategy};
use cc_toolkit::source_detection::SourceDetection;
use rand::Rng;

use crate::error::CcError;
use crate::estimates::DistanceMatrix;
use crate::oracle::{DistOracle, Guarantee};
use crate::pipeline::{self, Mode, Substrates};
use cc_graphs::StorageKind;

/// Configuration of the `(3+ε)` pipeline.
#[derive(Clone, Debug)]
pub struct Apsp3Config {
    /// Accuracy `ε`.
    pub eps: f64,
    /// Emulator configuration (long range).
    pub emulator: CliqueEmulatorConfig,
    /// Nearest-list width `k` (paper: `√n log n`).
    pub k: usize,
    /// Override of the short/long threshold `t`.
    pub t_override: Option<Dist>,
}

impl Apsp3Config {
    /// Paper profile.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(n: usize, eps: f64, r: usize) -> Result<Self, cc_emulator::params::ParamError> {
        let k = (((n as f64).sqrt() * (n.max(2) as f64).ln()).ceil() as usize).clamp(2, n);
        Ok(Apsp3Config {
            eps,
            emulator: CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r)?),
            k,
            t_override: None,
        })
    }

    /// Benchmark-scale profile.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn scaled(n: usize, eps: f64) -> Result<Self, cc_emulator::params::ParamError> {
        let k = ((n as f64).sqrt().ceil() as usize).clamp(2, n);
        Ok(Apsp3Config {
            eps,
            emulator: CliqueEmulatorConfig::scaled(EmulatorParams::loglog(n, eps)?),
            k,
            t_override: None,
        })
    }

    /// The short/long threshold `t`.
    pub fn threshold(&self) -> Dist {
        self.t_override
            .unwrap_or_else(|| pipeline::default_threshold(&self.emulator, self.eps))
    }
}

/// Result of the `(3+ε)` pipeline.
#[derive(Clone, Debug)]
pub struct Apsp3 {
    /// The estimates.
    pub estimates: DistanceMatrix,
    /// The threshold `t` used.
    pub t: Dist,
    /// The pivot set `A`.
    pub pivots: Vec<usize>,
    /// The proven short-range guarantee `3+ε`.
    pub short_range_guarantee: f64,
    /// Per-pair path witnesses, recorded when the configuration set
    /// `record_paths`. `Arc`-shared so memoized results clone cheaply.
    pub paths: Option<std::sync::Arc<cc_routes::PathStore>>,
}

impl Apsp3 {
    /// The provenance every estimate of this result is served under.
    pub fn guarantee(&self) -> Guarantee {
        Guarantee::mult3(self.short_range_guarantee - 3.0)
    }

    /// Freezes the estimates into an immutable, `Arc`-shareable
    /// [`DistOracle`] (symmetric-packed layout).
    pub fn into_oracle(self) -> DistOracle {
        let guarantee = self.guarantee();
        DistOracle::from_matrix(&self.estimates, guarantee, StorageKind::SymmetricPacked)
    }
}

/// Randomized `(3+ε)`-APSP.
///
/// # Errors
///
/// Returns [`CcError`] if a pipeline-internal hitting-set instance fails
/// validation.
pub fn run(
    g: &Graph,
    cfg: &Apsp3Config,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> Result<Apsp3, CcError> {
    run_mode(g, cfg, Mode::Rng(rng), ledger, &mut Substrates::new())
}

/// Deterministic `(3+ε)`-APSP.
///
/// # Errors
///
/// Returns [`CcError`] if a pipeline-internal hitting-set instance fails
/// validation.
pub fn run_deterministic(
    g: &Graph,
    cfg: &Apsp3Config,
    ledger: &mut RoundLedger,
) -> Result<Apsp3, CcError> {
    run_mode(g, cfg, Mode::Det, ledger, &mut Substrates::new())
}

pub(crate) fn run_mode(
    g: &Graph,
    cfg: &Apsp3Config,
    mut mode: Mode<'_>,
    ledger: &mut RoundLedger,
    substrates: &mut Substrates,
) -> Result<Apsp3, CcError> {
    let mut phase = ledger.enter("apsp3");
    let n = g.n();
    let t = cfg.threshold();
    let mut delta = DistanceMatrix::new(n);
    // Witness shadowing: every `delta` improvement below is mirrored by an
    // offer with the same strict-improvement rule, so the estimates (and the
    // rounds — witnesses ride the same messages) are identical with
    // recording on or off.
    let mut paths = cfg
        .emulator
        .record_paths
        .then(|| cc_routes::PathStore::new(n));

    // Long range + adjacency.
    let _ = pipeline::collect_emulator(
        g,
        &cfg.emulator,
        &mut mode,
        &mut delta,
        substrates,
        paths.as_mut(),
        &mut phase,
    );

    // (k, t)-nearest: exact short distances to the k nearest.
    let mut kn = KNearest::compute_with(
        g,
        cfg.k,
        t,
        Strategy::TruncatedBfs,
        cfg.emulator.threads,
        &mut phase,
    );
    if paths.is_some() {
        kn = kn.with_parents(g);
    }
    for u in 0..n {
        let recs = paths
            .as_mut()
            .map(|p| kn.route_recs(u, p.routes_mut().arena_mut()))
            .unwrap_or_default();
        for (idx, &(v, d)) in kn.list(u).iter().enumerate() {
            if v as usize != u {
                delta.improve(u, v as usize, d);
                if let Some(p) = paths.as_mut() {
                    p.offer_rec(u, v as usize, d, recs[idx].expect("non-root entry"));
                }
            }
        }
    }

    // Pivot set A hitting every full (k,t)-list.
    let full_sets: Vec<Vec<usize>> = (0..n)
        .filter(|&v| kn.list(v).len() >= cfg.k)
        .map(|v| kn.list(v).iter().map(|&(u, _)| u as usize).collect())
        .collect();
    let pivots =
        substrates.hitting_set_for("apsp3/pivots", n, cfg.k, &full_sets, &mut mode, &mut phase)?;

    if !pivots.is_empty() {
        // (1+ε/2)-approximate distances to A within 2t.
        let hs = substrates.hopset_for(
            "input",
            g,
            2 * t,
            cfg.eps / 2.0,
            cfg.emulator.scaled_hopset,
            cfg.emulator.threads,
            cfg.emulator.record_paths,
            &mut mode,
            &mut phase,
        );
        let union = hs.union_with(g);
        let sd = match &paths {
            Some(_) => SourceDetection::run_with_parents(&union, &pivots, hs.beta, &mut phase),
            None => SourceDetection::run(&union, &pivots, hs.beta, &mut phase),
        };
        if let Some(p) = paths.as_mut() {
            p.absorb_routes(hs.routes.as_ref().expect("hopset built with paths"));
        }
        for v in 0..n {
            for (i, &a) in pivots.iter().enumerate() {
                let d = sd.dist_to_source_index(v, i);
                if d < INF {
                    delta.improve(v, a, d);
                    if let Some(p) = paths.as_mut() {
                        let chain: Vec<u32> = sd
                            .chain(i, v)
                            .expect("detected pair has a chain")
                            .into_iter()
                            .map(|x| x as u32)
                            .collect();
                        p.offer_walk(g, d, &chain);
                    }
                }
            }
        }
        // Route every pair through the nearer endpoint's pivot. Each vertex
        // broadcasts its pivot and the distance to it: 1 round.
        phase.charge_broadcast("announce nearest pivots");
        let mut pivot_mask = vec![false; n];
        for &a in &pivots {
            pivot_mask[a] = true;
        }
        for u in 0..n {
            if let Some((a, _)) = kn.nearest_in(u, &pivot_mask) {
                let a = a as usize;
                let via = delta.get(u, a);
                if via >= INF {
                    continue;
                }
                for v in 0..n {
                    if v != u {
                        let leg = delta.get(a, v);
                        if leg < INF {
                            delta.improve_via(u, v, via, leg);
                            if let Some(p) = paths.as_mut() {
                                p.offer_via(u, v, cc_graphs::dadd(via, leg), a);
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(Apsp3 {
        estimates: delta,
        t,
        pivots,
        short_range_guarantee: 3.0 + cfg.eps,
        paths: paths.map(std::sync::Arc::new),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators, stretch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_short_range(g: &Graph, out: &Apsp3) {
        let exact = bfs::apsp_exact(g);
        let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
        assert_eq!(report.lower_violations, 0);
        assert_eq!(report.missed, 0);
        assert!(
            report.max_multiplicative <= out.short_range_guarantee + 1e-9,
            "stretch {} exceeds {}",
            report.max_multiplicative,
            out.short_range_guarantee
        );
    }

    #[test]
    fn three_plus_eps_on_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for (name, g) in [
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("gnp", generators::connected_gnp(72, 0.06, &mut rng)),
        ] {
            let cfg = Apsp3Config::new(g.n(), 0.5, 2).unwrap();
            let mut ledger = RoundLedger::new(g.n());
            let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
            let _ = name;
            assert_short_range(&g, &out);
        }
    }

    #[test]
    fn deterministic_three_plus_eps() {
        let g = generators::caveman(7, 7);
        let cfg = Apsp3Config::new(g.n(), 0.5, 2).unwrap();
        let mut ledger = RoundLedger::new(g.n());
        let out = run_deterministic(&g, &cfg, &mut ledger).unwrap();
        assert_short_range(&g, &out);
    }

    #[test]
    fn small_graph_with_tiny_k_still_covered() {
        // k ≥ n: every list covers the whole ball, so estimates are exact
        // within t and no pivots are needed.
        let g = generators::cycle(12);
        let mut cfg = Apsp3Config::new(12, 0.5, 2).unwrap();
        cfg.k = 12;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ledger = RoundLedger::new(12);
        let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
        let exact = bfs::apsp_exact(&g);
        for u in 0..12 {
            for v in 0..12 {
                if exact[u][v] <= out.t {
                    assert_eq!(out.estimates.get(u, v), exact[u][v]);
                }
            }
        }
    }
}
