//! The unified error hierarchy of the application layer.
//!
//! Every fallible entry point in `cc_core` — the [`crate::Solver`] session
//! API, the per-algorithm `run` functions and the deprecated
//! [`crate::facade::solve`] shim — returns [`CcError`]. The per-subsystem
//! error types ([`ParamError`], [`MsspError`], [`HittingError`],
//! [`EngineError`]) remain the source-of-truth payloads and convert in via
//! `From`, so callers can still match on the precise cause while handling a
//! single type at the API boundary.

use cc_clique::EngineError;
use cc_derand::hitting::HittingError;
use cc_emulator::params::ParamError;

use crate::mssp::MsspError;

/// Unified error type for the `cc_core` application layer.
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug)]
pub enum CcError {
    /// Invalid algorithm parameters (accuracy, level count, graph order).
    Params(ParamError),
    /// Invalid MSSP request (source count or range).
    Mssp(MsspError),
    /// A hitting-set instance failed validation (a pipeline promised set
    /// sizes it did not deliver).
    Hitting(HittingError),
    /// The message-level clique engine rejected a program.
    Engine(EngineError),
    /// A solver query was issued against a configuration that cannot
    /// support it.
    UnsupportedQuery {
        /// Human-readable explanation.
        reason: String,
    },
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcError::Params(e) => write!(f, "invalid parameters: {e}"),
            CcError::Mssp(e) => write!(f, "invalid MSSP request: {e}"),
            CcError::Hitting(e) => write!(f, "invalid hitting-set instance: {e}"),
            CcError::Engine(e) => write!(f, "clique engine error: {e}"),
            CcError::UnsupportedQuery { reason } => write!(f, "unsupported query: {reason}"),
        }
    }
}

impl std::error::Error for CcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcError::Params(e) => Some(e),
            CcError::Mssp(e) => Some(e),
            CcError::Hitting(e) => Some(e),
            CcError::Engine(e) => Some(e),
            CcError::UnsupportedQuery { .. } => None,
        }
    }
}

impl From<ParamError> for CcError {
    fn from(e: ParamError) -> Self {
        CcError::Params(e)
    }
}

impl From<MsspError> for CcError {
    fn from(e: MsspError) -> Self {
        CcError::Mssp(e)
    }
}

impl From<HittingError> for CcError {
    fn from(e: HittingError) -> Self {
        CcError::Hitting(e)
    }
}

impl From<EngineError> for CcError {
    fn from(e: EngineError) -> Self {
        CcError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_preserve_payloads() {
        let e: CcError = ParamError::BadEps(2.0).into();
        assert!(matches!(e, CcError::Params(ParamError::BadEps(_))));
        let e: CcError = MsspError::NoSources.into();
        assert!(matches!(e, CcError::Mssp(MsspError::NoSources)));
        let e: CcError = HittingError::SetTooSmall {
            index: 0,
            size: 1,
            k: 2,
        }
        .into();
        assert!(matches!(e, CcError::Hitting(_)));
        let e: CcError = EngineError::RoundLimitExceeded { limit: 5 }.into();
        assert!(matches!(e, CcError::Engine(_)));
    }

    #[test]
    fn display_and_source_are_wired() {
        let e: CcError = ParamError::BadEps(2.0).into();
        assert!(e.to_string().contains("invalid parameters"));
        assert!(e.source().is_some());
        let e = CcError::UnsupportedQuery {
            reason: "no estimates yet".into(),
        };
        assert!(e.to_string().contains("no estimates yet"));
        assert!(e.source().is_none());
    }
}
