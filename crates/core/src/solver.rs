//! The session-style entry point over the paper's algorithm portfolio.
//!
//! The paper's three applications (Thms 3–5) all stand on the same expensive
//! substrates — the near-additive emulator and bounded hopsets. A
//! [`Solver`], configured once through [`SolverBuilder`], owns the graph,
//! the round ledger and a substrate cache, so a multi-query workload
//! (`apsp_2eps()` then `mssp(..)`, repeated point queries, mixed accuracy
//! profiles) pays for each substrate **once**:
//!
//! ```
//! use cc_core::{Execution, SolverBuilder};
//! use cc_graphs::generators;
//!
//! let g = generators::caveman(6, 6);
//! let mut solver = SolverBuilder::new(g)
//!     .eps(0.5)
//!     .execution(Execution::Seeded(7))
//!     .build()?;
//! let apsp = solver.apsp_2eps()?;
//! assert!(apsp.estimates.get(0, 20) >= 1);
//! // The MSSP query reuses the emulator the APSP query built.
//! let landmarks = solver.mssp(&[0, 9, 18])?;
//! assert_eq!(landmarks.dist(0, 0), 0);
//! // Cheap tagged point lookups over everything computed so far.
//! let answer = solver.estimate(0, 20).expect("estimate cached");
//! println!("d(0,20) ≤ {} under {}", answer.dist, answer.guarantee);
//! // Freeze the read side for lock-free concurrent serving.
//! let oracle = std::sync::Arc::new(solver.freeze()?);
//! assert_eq!(oracle.dist(0, 20).map(|e| e.dist), Some(answer.dist));
//! println!("{}", solver.ledger().report());
//! # Ok::<(), cc_core::CcError>(())
//! ```

use cc_clique::RoundLedger;
use cc_graphs::{Dist, DistStorage, Graph, INF};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::apsp2::{self, Apsp2, Apsp2Config};
use crate::apsp3::{self, Apsp3, Apsp3Config};
use crate::apsp_additive::{self, AdditiveApsp, AdditiveApspConfig};
use crate::error::CcError;
use crate::mssp::{self, Mssp, MsspConfig};
use crate::oracle::{DistOracle, Guarantee, PointEstimate};
use crate::path_oracle::{PathOracle, PathProvider};
use crate::pipeline::{Mode, Substrates};

/// Randomized (seeded) or deterministic execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Execution {
    /// Randomized with the given seed (Thms 3–5). Every query draws a fresh
    /// generator from the seed, so the **first** query of a session matches
    /// the corresponding free-function call with the same seed bit-for-bit.
    /// Later queries reuse cached substrates and therefore consume the
    /// random stream from a different position than a cold run would — still
    /// deterministic per (seed, query history), and every approximation
    /// guarantee holds, but not stream-identical to a fresh call.
    Seeded(u64),
    /// Deterministic (Thms 51–53): bit-for-bit reproducible.
    Deterministic,
}

/// Which parameter schedule the solver instantiates its pipelines with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamProfile {
    /// The paper's constants with an explicit emulator level count `r`.
    Paper {
        /// Number of emulator levels.
        levels: usize,
    },
    /// Benchmark-scale profile: `r = max(2, ⌊log₂log₂ n⌋)` and tempered
    /// hopset constants (same exponents as the paper).
    Scaled,
}

/// Builder for a [`Solver`]: graph in, validated session out.
///
/// Validation (accuracy range, graph order, level schedule) happens in
/// [`SolverBuilder::build`], which returns [`CcError`] — queries on a built
/// solver can then only fail for query-specific reasons (e.g. an invalid
/// MSSP source set).
#[derive(Clone, Debug)]
pub struct SolverBuilder {
    graph: Graph,
    eps: f64,
    execution: Execution,
    profile: ParamProfile,
    threads: usize,
    record_paths: bool,
    profile_stages: bool,
}

impl SolverBuilder {
    /// Starts a builder over `graph` with the defaults `eps = 0.5`,
    /// [`Execution::Seeded(0)`](Execution::Seeded), [`ParamProfile::Scaled`],
    /// serial execution (`threads = 1`), no path recording and no stage
    /// profiling.
    pub fn new(graph: Graph) -> Self {
        SolverBuilder {
            graph,
            eps: 0.5,
            execution: Execution::Seeded(0),
            profile: ParamProfile::Scaled,
            threads: 1,
            record_paths: false,
            profile_stages: false,
        }
    }

    /// Makes every query record path witnesses alongside its estimates, so
    /// [`Solver::freeze_with_paths`] can serve routes, not just distances.
    ///
    /// Purely local bookkeeping: estimates and charged rounds are
    /// **bit-identical** with recording on or off (in the model, witnesses
    /// ride the same messages as the distances they annotate — pinned by
    /// tests against `cost::model`). The cost is wall-clock and memory for
    /// the witness arenas.
    #[must_use]
    pub fn record_paths(mut self, record_paths: bool) -> Self {
        self.record_paths = record_paths;
        self
    }

    /// Sets the worker-thread count the pipelines' local computation runs
    /// with (`0` and `1` both mean serial): the min-plus kernels, `(k,d)`-
    /// nearest lists and hopset construction shard across scoped threads.
    ///
    /// Purely wall-clock — results and charged rounds are **bit-identical**
    /// at any thread count (every sharded unit depends only on the inputs;
    /// same argument as the engine's sharded node execution, DESIGN.md §1.2).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Turns on wall-clock profiling of the pipeline stages (emulator and
    /// hopset construction, hitting sets, the `E''` min-plus products, the
    /// freeze merge), readable afterwards via [`Solver::stage_times`] /
    /// [`Solver::profile_exposition`].
    ///
    /// Purely observational: timing is recorded after each stage completes
    /// and never feeds back, so estimates **and** charged rounds are
    /// bit-identical with profiling on or off (pinned by tests, same
    /// contract as [`SolverBuilder::record_paths`]). When off (the
    /// default), the timers never read the clock.
    #[must_use]
    pub fn profile_stages(mut self, profile_stages: bool) -> Self {
        self.profile_stages = profile_stages;
        self
    }

    /// Sets the accuracy `ε ∈ (0, 1)` shared by all queries.
    #[must_use]
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets seeded-randomized or deterministic execution.
    #[must_use]
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the parameter schedule (paper constants or benchmark scale).
    #[must_use]
    pub fn profile(mut self, profile: ParamProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`CcError::Params`] for `ε ∉ (0,1)`, graphs with fewer than
    /// two vertices, a zero level count, or a radius schedule that overflows
    /// the distance type.
    pub fn build(self) -> Result<Solver, CcError> {
        let n = self.graph.n();
        let (mut apsp2_cfg, mut apsp3_cfg, mut additive_cfg, mut mssp_cfg) = match self.profile {
            ParamProfile::Paper { levels } => (
                Apsp2Config::new(n, self.eps, levels)?,
                Apsp3Config::new(n, self.eps, levels)?,
                AdditiveApspConfig::new(n, self.eps, levels)?,
                MsspConfig::new(n, self.eps, levels)?,
            ),
            ParamProfile::Scaled => (
                Apsp2Config::scaled(n, self.eps)?,
                Apsp3Config::scaled(n, self.eps)?,
                AdditiveApspConfig::scaled(n, self.eps)?,
                MsspConfig::scaled(n, self.eps)?,
            ),
        };
        apsp2_cfg.emulator.threads = self.threads;
        apsp3_cfg.emulator.threads = self.threads;
        additive_cfg.emulator.threads = self.threads;
        mssp_cfg.emulator.threads = self.threads;
        apsp2_cfg.emulator.record_paths = self.record_paths;
        apsp3_cfg.emulator.record_paths = self.record_paths;
        additive_cfg.emulator.record_paths = self.record_paths;
        mssp_cfg.emulator.record_paths = self.record_paths;
        let ledger = RoundLedger::new(n);
        let substrates = Substrates::new();
        substrates
            .stages
            .borrow_mut()
            .set_enabled(self.profile_stages);
        Ok(Solver {
            graph: self.graph,
            eps: self.eps,
            execution: self.execution,
            profile: self.profile,
            threads: self.threads,
            record_paths: self.record_paths,
            apsp2_cfg,
            apsp3_cfg,
            additive_cfg,
            mssp_cfg,
            ledger,
            substrates,
            apsp2_result: None,
            apsp3_result: None,
            additive_result: None,
            mssp_results: Vec::new(),
        })
    }
}

/// A prepared shortest-path session over one graph.
///
/// Created by [`SolverBuilder`]. All queries charge simulated rounds to the
/// solver-owned [`RoundLedger`] (accessible via [`Solver::ledger`]), and the
/// expensive substrates — emulator, bounded hopsets, hitting sets — are
/// built once and memoized (keyed by mode and threshold) across queries.
/// Query results themselves are memoized too, so repeating a query is free,
/// and [`Solver::query`] answers point lookups from everything computed so
/// far without charging any rounds.
#[derive(Debug)]
pub struct Solver {
    graph: Graph,
    eps: f64,
    execution: Execution,
    profile: ParamProfile,
    threads: usize,
    record_paths: bool,
    apsp2_cfg: Apsp2Config,
    apsp3_cfg: Apsp3Config,
    additive_cfg: AdditiveApspConfig,
    mssp_cfg: MsspConfig,
    ledger: RoundLedger,
    substrates: Substrates,
    apsp2_result: Option<Apsp2>,
    apsp3_result: Option<Apsp3>,
    additive_result: Option<AdditiveApsp>,
    mssp_results: Vec<(Vec<usize>, Mssp)>,
}

/// Output of the shared freeze merge (packed upper-triangle indexing).
struct MergedTables {
    data: Vec<Dist>,
    tags: Vec<u8>,
    guarantees: Vec<Guarantee>,
    /// Index of the winning result per pair (provider numbering of
    /// [`Solver::freeze_with_paths`]).
    origins: Vec<u8>,
}

/// Runs `body` with a fresh per-query mode derived from `execution`.
macro_rules! with_mode {
    ($execution:expr, |$mode:ident| $body:expr) => {{
        match $execution {
            Execution::Seeded(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let $mode = Mode::Rng(&mut rng);
                $body
            }
            Execution::Deterministic => {
                let $mode = Mode::Det;
                $body
            }
        }
    }};
}

impl Solver {
    /// Shorthand for [`SolverBuilder::new`].
    pub fn builder(graph: Graph) -> SolverBuilder {
        SolverBuilder::new(graph)
    }

    /// The graph this session answers queries about.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Graph order `n`.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The accuracy `ε` shared by all queries.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The execution mode.
    pub fn execution(&self) -> Execution {
        self.execution
    }

    /// The parameter profile.
    pub fn profile(&self) -> ParamProfile {
        self.profile
    }

    /// The worker-thread count of the pipelines' local computation.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when queries record path witnesses
    /// ([`SolverBuilder::record_paths`]).
    pub fn records_paths(&self) -> bool {
        self.record_paths
    }

    /// `true` when the session records wall-clock stage timings
    /// ([`SolverBuilder::profile_stages`]).
    pub fn profiles_stages(&self) -> bool {
        self.substrates.stages.borrow().enabled()
    }

    /// Snapshot of the accumulated per-stage wall-clock, name-sorted.
    /// Empty unless the session was built with
    /// [`SolverBuilder::profile_stages`]`(true)`.
    pub fn stage_times(&self) -> Vec<(&'static str, cc_obs::StageStat)> {
        self.substrates.stages.borrow().entries().collect()
    }

    /// Renders the stage timers plus the round ledger in the workspace's
    /// integer metrics-text style (`cc_solver_stage_ns{stage="…"}`,
    /// `cc_solver_rounds_total`, `cc_solver_phase_rounds{phase="…"}`, …).
    /// The ledger lines are present whether or not profiling is on; the
    /// stage lines require it.
    pub fn profile_exposition(&self) -> String {
        let mut out = self.substrates.stages.borrow().exposition("cc_solver");
        out.push_str(&self.ledger.exposition("cc_solver"));
        out
    }

    /// The session's round ledger: every query's simulated communication,
    /// attributed by phase. Substrate reuse shows up here as construction
    /// entries appearing once rather than once per query.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Total simulated rounds charged so far.
    pub fn total_rounds(&self) -> u64 {
        self.ledger.total_rounds()
    }

    /// `(2+ε)`-approximate APSP (Thm 4/34). Memoized: the first call runs
    /// the pipeline, later calls return the cached result without charging
    /// rounds (they still copy the `n × n` result; use [`Solver::query`]
    /// for repeated point lookups).
    ///
    /// # Errors
    ///
    /// Returns [`CcError`] if a pipeline-internal hitting-set instance
    /// fails validation.
    pub fn apsp_2eps(&mut self) -> Result<Apsp2, CcError> {
        if self.apsp2_result.is_none() {
            let started = self.substrates.stages.borrow().start();
            let out = with_mode!(self.execution, |mode| apsp2::run_mode(
                &self.graph,
                &self.apsp2_cfg,
                mode,
                &mut self.ledger,
                &mut self.substrates,
            ))?;
            self.substrates.stages.borrow_mut().stop("apsp2", started);
            self.apsp2_result = Some(out);
        }
        Ok(self.apsp2_result.clone().expect("memoized above"))
    }

    /// `(3+ε)`-approximate APSP (the §4.3 warm-up pipeline). Memoized.
    ///
    /// # Errors
    ///
    /// Returns [`CcError`] if a pipeline-internal hitting-set instance
    /// fails validation.
    pub fn apsp_3eps(&mut self) -> Result<Apsp3, CcError> {
        if self.apsp3_result.is_none() {
            let started = self.substrates.stages.borrow().start();
            let out = with_mode!(self.execution, |mode| apsp3::run_mode(
                &self.graph,
                &self.apsp3_cfg,
                mode,
                &mut self.ledger,
                &mut self.substrates,
            ))?;
            self.substrates.stages.borrow_mut().stop("apsp3", started);
            self.apsp3_result = Some(out);
        }
        Ok(self.apsp3_result.clone().expect("memoized above"))
    }

    /// `(1+ε, β)`-approximate APSP (Thm 5/32). Memoized.
    ///
    /// # Errors
    ///
    /// Currently infallible after [`SolverBuilder::build`]; returns
    /// `Result` for uniformity with the other queries.
    pub fn apsp_near_additive(&mut self) -> Result<AdditiveApsp, CcError> {
        if self.additive_result.is_none() {
            let started = self.substrates.stages.borrow().start();
            let out = with_mode!(self.execution, |mode| apsp_additive::run_mode(
                &self.graph,
                &self.additive_cfg,
                mode,
                &mut self.ledger,
                &mut self.substrates,
            ));
            self.substrates
                .stages
                .borrow_mut()
                .stop("additive", started);
            self.additive_result = Some(out);
        }
        Ok(self.additive_result.clone().expect("memoized above"))
    }

    /// `(1+ε)`-approximate multi-source shortest paths from `O(√n)` sources
    /// (Thm 3/33). Memoized per source set (order-sensitive, matching the
    /// row order of the result).
    ///
    /// # Errors
    ///
    /// Returns [`CcError::Mssp`] for an empty, out-of-range, or
    /// over-the-`O(√n)`-limit source set.
    pub fn mssp(&mut self, sources: &[usize]) -> Result<Mssp, CcError> {
        if let Some((_, out)) = self.mssp_results.iter().find(|(s, _)| s == sources) {
            return Ok(out.clone());
        }
        let started = self.substrates.stages.borrow().start();
        let out = with_mode!(self.execution, |mode| mssp::run_mode(
            &self.graph,
            sources,
            &self.mssp_cfg,
            mode,
            &mut self.ledger,
            &mut self.substrates,
        ))?;
        self.substrates.stages.borrow_mut().stop("mssp", started);
        self.mssp_results.push((sources.to_vec(), out.clone()));
        Ok(out)
    }

    /// Feeds every estimate any computed result holds for `(u, v)` — with
    /// the guarantee that result proved — to `consider`.
    fn for_each_candidate(&self, u: usize, v: usize, mut consider: impl FnMut(Dist, Guarantee)) {
        if let Some(r) = &self.apsp3_result {
            consider(r.estimates.get(u, v), r.guarantee());
        }
        if let Some(r) = &self.apsp2_result {
            consider(r.estimates.get(u, v), r.guarantee());
        }
        if let Some(r) = &self.additive_result {
            consider(r.estimates.get(u, v), r.guarantee());
        }
        for (_, m) in &self.mssp_results {
            let g = m.guarantee_tag();
            for (i, &s) in m.sources.iter().enumerate() {
                if s == u {
                    consider(m.estimates[i][v], g);
                }
                if s == v {
                    consider(m.estimates[i][u], g);
                }
            }
        }
    }

    /// The strongest guarantee among the results computed so far.
    fn strongest_computed(&self) -> Option<Guarantee> {
        let mut best: Option<Guarantee> = None;
        let mut upd = |g: Guarantee| {
            if best.is_none_or(|b| g.stronger_than(&b)) {
                best = Some(g);
            }
        };
        if let Some(r) = &self.apsp3_result {
            upd(r.guarantee());
        }
        if let Some(r) = &self.apsp2_result {
            upd(r.guarantee());
        }
        if let Some(r) = &self.additive_result {
            upd(r.guarantee());
        }
        for (_, m) in &self.mssp_results {
            upd(m.guarantee_tag());
        }
        best
    }

    /// Cheap tagged point lookup over everything computed so far: the best
    /// estimate for `d(u, v)` together with the [`Guarantee`] of the
    /// pipeline that actually produced it, or `None` if no query has
    /// produced one yet. Charges no rounds — in the model, estimates are
    /// already local to their vertices.
    ///
    /// When several pipelines (possibly run with different `ε`) hold equal
    /// best estimates, the answer is tagged with the strongest of their
    /// guarantees; a strictly better estimate always wins regardless of its
    /// guarantee, so a weak-`ε` pipeline can improve the *value* but never
    /// silently upgrade the *bound* of an answer.
    pub fn estimate(&self, u: usize, v: usize) -> Option<PointEstimate> {
        let n = self.graph.n();
        if u >= n || v >= n {
            return None;
        }
        if u == v {
            return self
                .strongest_computed()
                .map(|guarantee| PointEstimate { dist: 0, guarantee });
        }
        let mut best: Option<PointEstimate> = None;
        self.for_each_candidate(u, v, |d, g| {
            if d >= INF {
                return;
            }
            let wins = match &best {
                Some(b) => d < b.dist || (d == b.dist && g.stronger_than(&b.guarantee)),
                None => true,
            };
            if wins {
                best = Some(PointEstimate {
                    dist: d,
                    guarantee: g,
                });
            }
        });
        best
    }

    /// Untagged point lookup.
    #[deprecated(
        since = "0.3.0",
        note = "use `Solver::estimate` (tagged answer) or `Solver::freeze` + \
                `DistOracle::dist` for serving; a bare `Option<Dist>` loses \
                the approximation guarantee of the winning pipeline"
    )]
    pub fn query(&self, u: usize, v: usize) -> Option<Dist> {
        self.estimate(u, v).map(|e| e.dist)
    }

    /// Freezes everything computed so far into an immutable,
    /// `Arc`-shareable [`DistOracle`] for lock-free concurrent serving.
    ///
    /// The oracle stores the pointwise-best estimate per pair in the
    /// symmetric-packed layout (all session pipelines produce symmetric
    /// estimates) with a per-entry provenance tag, so
    /// [`DistOracle::dist`] answers exactly like [`Solver::estimate`] —
    /// same values, same guarantees. The solver remains usable afterwards;
    /// re-freezing after further queries produces a new oracle.
    ///
    /// # Errors
    ///
    /// Returns [`CcError::UnsupportedQuery`] when no pipeline query has run
    /// yet (there is nothing to freeze).
    pub fn freeze(&self) -> Result<DistOracle, CcError> {
        let n = self.graph.n();
        let started = self.substrates.stages.borrow().start();
        let merged = self.merged_tables()?;
        let oracle = DistOracle::from_tagged_packed(n, merged.data, merged.tags, merged.guarantees);
        self.substrates.stages.borrow_mut().stop("freeze", started);
        Ok(oracle)
    }

    /// Freezes everything computed so far into an immutable,
    /// `Arc`-shareable [`PathOracle`] serving **routes** — real walks in `G`
    /// with their exact weight and the winning pipeline's [`Guarantee`] —
    /// beside the same tagged distances [`Solver::freeze`] serves. Requires
    /// the session to have been built with
    /// [`SolverBuilder::record_paths`]`(true)`.
    ///
    /// The embedded distance oracle is identical to [`Solver::freeze`]'s
    /// (same merge, same provenance tags); per pair, the witness of the
    /// pipeline whose estimate won serves the route, so every route's
    /// weight is bounded by the answered estimate.
    ///
    /// # Errors
    ///
    /// Returns [`CcError::UnsupportedQuery`] when path recording is off or
    /// no pipeline query has run yet.
    pub fn freeze_with_paths(&self) -> Result<PathOracle, CcError> {
        if !self.record_paths {
            return Err(CcError::UnsupportedQuery {
                reason: "path freezing requires SolverBuilder::record_paths(true)".into(),
            });
        }
        // Origins are one byte per pair: more than 256 results cannot be
        // addressed. (Distance-only `freeze()` has no such limit.)
        if 3 + self.mssp_results.len() > 256 {
            return Err(CcError::UnsupportedQuery {
                reason: "freeze_with_paths supports at most 253 MSSP batches per session".into(),
            });
        }
        let n = self.graph.n();
        let started = self.substrates.stages.borrow().start();
        let merged = self.merged_tables()?;
        // Providers in the exact order `merged_tables` numbered them.
        let mut providers: Vec<PathProvider> = Vec::new();
        if let Some(r) = &self.apsp3_result {
            providers.push(PathProvider::Pairs(
                r.paths.clone().expect("recorded session result"),
            ));
        }
        if let Some(r) = &self.apsp2_result {
            providers.push(PathProvider::Pairs(
                r.paths.clone().expect("recorded session result"),
            ));
        }
        if let Some(r) = &self.additive_result {
            providers.push(PathProvider::Pairs(
                r.paths.clone().expect("recorded session result"),
            ));
        }
        for (_, m) in &self.mssp_results {
            providers.push(PathProvider::Rows(
                m.paths.clone().expect("recorded session result"),
            ));
        }
        let oracle = DistOracle::from_tagged_packed(n, merged.data, merged.tags, merged.guarantees);
        let frozen = PathOracle::new(oracle, merged.origins, providers);
        self.substrates.stages.borrow_mut().stop("freeze", started);
        Ok(frozen)
    }

    /// The shared freeze merge: pointwise-best packed values, provenance
    /// tags, and — for the path oracle — the index of the result whose
    /// estimate (and therefore witness) won each pair. Results are numbered
    /// in the order they are merged: apsp3, apsp2, additive, then each MSSP
    /// batch.
    fn merged_tables(&self) -> Result<MergedTables, CcError> {
        let n = self.graph.n();
        // Dedup guarantees into a small table (repeat MSSP batches share
        // one entry); the per-entry tag bytes index into it.
        let mut guarantees: Vec<Guarantee> = Vec::new();
        let tag_for = |g: Guarantee, table: &mut Vec<Guarantee>| -> u8 {
            if let Some(i) = table.iter().position(|&h| h == g) {
                return i as u8;
            }
            assert!(table.len() < 256, "provenance table overflow");
            table.push(g);
            (table.len() - 1) as u8
        };
        let entries = n * (n + 1) / 2;
        let mut data = vec![INF; entries];
        let mut tags = vec![0u8; entries];
        let mut origins = vec![0u8; entries];
        let merge = |idx: usize,
                     d: Dist,
                     tag: u8,
                     origin: u8,
                     data: &mut [Dist],
                     tags: &mut [u8],
                     origins: &mut [u8],
                     table: &[Guarantee]| {
            let wins = d < data[idx]
                || (d < INF
                    && d == data[idx]
                    && table[tag as usize].stronger_than(&table[tags[idx] as usize]));
            if wins {
                data[idx] = d;
                tags[idx] = tag;
                origins[idx] = origin;
            }
        };
        // One origin byte per winning result. The byte can only wrap past
        // 256 results; `freeze()` never reads origins, and
        // `freeze_with_paths()` rejects such sessions before using them.
        let mut origin: usize = 0;
        let mut frozen_any = false;
        let mut matrix_layers = Vec::new();
        if let Some(r) = &self.apsp3_result {
            matrix_layers.push((&r.estimates, r.guarantee()));
        }
        if let Some(r) = &self.apsp2_result {
            matrix_layers.push((&r.estimates, r.guarantee()));
        }
        if let Some(r) = &self.additive_result {
            matrix_layers.push((&r.estimates, r.guarantee()));
        }
        for (m, g) in matrix_layers {
            frozen_any = true;
            let tag = tag_for(g, &mut guarantees);
            let mut idx = 0;
            for u in 0..n {
                let row = m.row(u);
                for &d in &row[u..] {
                    merge(
                        idx,
                        d,
                        tag,
                        origin as u8,
                        &mut data,
                        &mut tags,
                        &mut origins,
                        &guarantees,
                    );
                    idx += 1;
                }
            }
            origin += 1;
        }
        for (_, m) in &self.mssp_results {
            frozen_any = true;
            let tag = tag_for(m.guarantee_tag(), &mut guarantees);
            for (i, &s) in m.sources.iter().enumerate() {
                for (v, &d) in m.estimates[i].iter().enumerate() {
                    merge(
                        DistStorage::packed_index(n, s, v),
                        d,
                        tag,
                        origin as u8,
                        &mut data,
                        &mut tags,
                        &mut origins,
                        &guarantees,
                    );
                }
            }
            origin += 1;
        }
        if !frozen_any {
            return Err(CcError::UnsupportedQuery {
                reason: "nothing to freeze: run a pipeline query (apsp_2eps, mssp, …) first".into(),
            });
        }
        Ok(MergedTables {
            data,
            tags,
            guarantees,
            origins,
        })
    }

    /// Number of ordered vertex pairs with a cached finite estimate —
    /// a single union pass over the stored results (one packed coverage
    /// flag per unordered pair; no freeze-sized value/tag materialization).
    pub fn cached_pairs(&self) -> usize {
        let n = self.graph.n();
        let mut covered = vec![false; n * (n + 1) / 2];
        let mut matrices = Vec::new();
        if let Some(r) = &self.apsp3_result {
            matrices.push(&r.estimates);
        }
        if let Some(r) = &self.apsp2_result {
            matrices.push(&r.estimates);
        }
        if let Some(r) = &self.additive_result {
            matrices.push(&r.estimates);
        }
        for m in matrices {
            let mut idx = 0;
            for u in 0..n {
                let row = m.row(u);
                for (v, &d) in row.iter().enumerate().skip(u) {
                    covered[idx] |= v != u && d < INF;
                    idx += 1;
                }
            }
        }
        for (_, m) in &self.mssp_results {
            for (i, &s) in m.sources.iter().enumerate() {
                for (v, &d) in m.estimates[i].iter().enumerate() {
                    if v != s && d < INF {
                        covered[DistStorage::packed_index(n, s, v)] = true;
                    }
                }
            }
        }
        // Estimates are symmetric, so each covered unordered pair counts
        // for both orientations.
        2 * covered.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mssp::MsspError;
    use cc_emulator::params::ParamError;
    use cc_graphs::{bfs, generators, Graph};

    #[test]
    fn builder_defaults_and_accessors() {
        let g = generators::cycle(24);
        let solver = SolverBuilder::new(g).build().unwrap();
        assert_eq!(solver.n(), 24);
        assert_eq!(solver.eps(), 0.5);
        assert_eq!(solver.execution(), Execution::Seeded(0));
        assert_eq!(solver.profile(), ParamProfile::Scaled);
        assert_eq!(solver.total_rounds(), 0);
        assert_eq!(solver.cached_pairs(), 0);
    }

    #[test]
    fn builder_rejects_bad_eps_and_tiny_graphs() {
        let g = generators::cycle(16);
        let err = SolverBuilder::new(g.clone()).eps(2.0).build().unwrap_err();
        assert!(matches!(err, CcError::Params(ParamError::BadEps(_))));
        let err = SolverBuilder::new(g.clone()).eps(0.0).build().unwrap_err();
        assert!(matches!(err, CcError::Params(ParamError::BadEps(_))));
        let tiny = Graph::from_edges(1, &[]);
        let err = SolverBuilder::new(tiny).build().unwrap_err();
        assert!(matches!(err, CcError::Params(ParamError::BadN(1))));
        let err = SolverBuilder::new(g)
            .profile(ParamProfile::Paper { levels: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, CcError::Params(ParamError::BadLevels(0))));
    }

    #[test]
    fn repeated_apsp_queries_are_free() {
        let g = generators::caveman(6, 6);
        let mut solver = SolverBuilder::new(g)
            .execution(Execution::Seeded(3))
            .build()
            .unwrap();
        let first = solver.apsp_2eps().unwrap();
        let rounds_after_first = solver.total_rounds();
        assert!(rounds_after_first > 0);
        let second = solver.apsp_2eps().unwrap();
        assert_eq!(first.estimates, second.estimates);
        assert_eq!(solver.total_rounds(), rounds_after_first);
    }

    #[test]
    fn estimate_reflects_computed_estimates() {
        let g = generators::grid(6, 6);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.25)
            .execution(Execution::Deterministic)
            .build()
            .unwrap();
        assert_eq!(solver.estimate(0, 5), None, "nothing computed yet");
        solver.apsp_near_additive().unwrap();
        let exact = bfs::apsp_exact(&g);
        for v in 1..g.n() {
            let est = solver.estimate(0, v).expect("estimate cached");
            assert!(est.dist >= exact[0][v]);
            assert_eq!(
                est.guarantee.kind,
                crate::oracle::GuaranteeKind::NearAdditive
            );
        }
        assert_eq!(solver.estimate(99, 0), None, "out of range is None");
        #[allow(deprecated)]
        let legacy = solver.query(0, 5);
        assert_eq!(legacy, solver.estimate(0, 5).map(|e| e.dist));
    }

    #[test]
    fn estimates_keep_the_provenance_of_the_winning_pipeline() {
        // The old `query` returned the pointwise min across pipelines with
        // no tag — a (3+ε) estimate could masquerade under a caller-assumed
        // stronger bound. Run the weak pipeline plus an MSSP batch: answers
        // improved by MSSP must be tagged Mssp, the rest Mult3Eps.
        let g = generators::caveman(6, 6);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(11))
            .build()
            .unwrap();
        let weak = solver.apsp_3eps().unwrap();
        let sources = [0usize, 14, 28];
        let strong = solver.mssp(&sources).unwrap();
        let mut mssp_tagged = 0;
        for (i, &s) in sources.iter().enumerate() {
            for v in 0..g.n() {
                if v == s {
                    continue;
                }
                let est = solver.estimate(s, v).expect("covered by both");
                let weak_d = weak.estimates.get(s, v);
                let strong_d = strong.estimates[i][v];
                assert_eq!(est.dist, weak_d.min(strong_d), "min wins at ({s},{v})");
                let expected_kind = if strong_d <= weak_d {
                    crate::oracle::GuaranteeKind::Mssp
                } else {
                    crate::oracle::GuaranteeKind::Mult3Eps
                };
                assert_eq!(est.guarantee.kind, expected_kind, "tag at ({s},{v})");
                if expected_kind == crate::oracle::GuaranteeKind::Mssp {
                    mssp_tagged += 1;
                }
            }
        }
        assert!(mssp_tagged > 0, "MSSP should win somewhere");
        // A pair not covered by any source keeps the weak pipeline's tag.
        let est = solver.estimate(1, 2).unwrap();
        assert_eq!(est.guarantee.kind, crate::oracle::GuaranteeKind::Mult3Eps);
    }

    #[test]
    fn freeze_matches_estimate_everywhere() {
        let g = generators::caveman(6, 6);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(4))
            .build()
            .unwrap();
        assert!(matches!(
            solver.freeze(),
            Err(CcError::UnsupportedQuery { .. })
        ));
        solver.apsp_3eps().unwrap();
        solver.mssp(&[0, 9, 18]).unwrap();
        let oracle = solver.freeze().unwrap();
        assert_eq!(oracle.n(), g.n());
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(oracle.dist(u, v), solver.estimate(u, v), "({u},{v})");
            }
        }
        assert_eq!(oracle.finite_pairs(), solver.cached_pairs());
    }

    #[test]
    fn mssp_is_memoized_per_source_set() {
        let g = generators::cycle(36);
        let mut solver = SolverBuilder::new(g)
            .execution(Execution::Seeded(2))
            .build()
            .unwrap();
        let a = solver.mssp(&[0, 9, 18]).unwrap();
        let rounds = solver.total_rounds();
        let b = solver.mssp(&[0, 9, 18]).unwrap();
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(solver.total_rounds(), rounds, "repeat is free");
        let _ = solver.mssp(&[1, 2]).unwrap();
        assert!(solver.total_rounds() > rounds, "new source set runs");
        let err = solver.mssp(&[]).unwrap_err();
        assert!(matches!(err, CcError::Mssp(MsspError::NoSources)));
    }

    #[test]
    fn threaded_sessions_are_bit_identical() {
        // The threads knob is wall-clock only: estimates AND charged rounds
        // must match the serial session exactly.
        let g = generators::caveman(6, 6);
        let run = |threads: usize| {
            let mut solver = SolverBuilder::new(g.clone())
                .eps(0.5)
                .execution(Execution::Seeded(9))
                .threads(threads)
                .build()
                .unwrap();
            let apsp = solver.apsp_2eps().unwrap();
            let mssp = solver.mssp(&[0, 14, 28]).unwrap();
            (apsp.estimates, mssp.estimates, solver.total_rounds())
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
        let solver = SolverBuilder::new(g).threads(3).build().unwrap();
        assert_eq!(solver.threads(), 3);
    }

    /// Asserts `route` is a real walk `u → v` in `g` whose weight equals
    /// `Route::weight` and stays within the estimate and guarantee.
    fn assert_route_valid(
        g: &Graph,
        exact: &[Vec<cc_graphs::Dist>],
        route: &crate::Route,
        est: crate::PointEstimate,
    ) {
        let (u, v) = (route.src as usize, route.dst as usize);
        if u == v {
            assert_eq!(route.weight, 0);
            assert!(route.edges.is_empty());
            return;
        }
        assert_eq!(route.edges[0].0 as usize, u);
        assert_eq!(route.edges[route.edges.len() - 1].1 as usize, v);
        for w in route.edges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "consecutive edges must chain");
        }
        for &(x, y) in &route.edges {
            assert!(g.has_edge(x as usize, y as usize), "({x},{y}) not in G");
        }
        assert_eq!(route.weight, route.edges.len() as cc_graphs::Dist);
        assert!(route.weight >= exact[u][v], "walk cannot undercut d_G");
        assert!(route.weight <= est.dist, "walk heavier than the estimate");
        assert!(
            (route.weight as f64) <= est.guarantee.bound(exact[u][v]) + 1e-9,
            "walk outside the tagged guarantee at ({u},{v})"
        );
        assert_eq!(route.guarantee, est.guarantee);
    }

    #[test]
    fn recording_paths_changes_neither_estimates_nor_rounds() {
        // The tentpole invariant: witnesses ride the same messages — per
        // pipeline, estimates AND charged rounds are bit-identical with
        // recording on or off.
        let g = generators::caveman(6, 6);
        let run = |record: bool| {
            let mut solver = SolverBuilder::new(g.clone())
                .eps(0.5)
                .execution(Execution::Seeded(5))
                .record_paths(record)
                .build()
                .unwrap();
            let a2 = solver.apsp_2eps().unwrap();
            let a3 = solver.apsp_3eps().unwrap();
            let add = solver.apsp_near_additive().unwrap();
            let ms = solver.mssp(&[0, 14, 28]).unwrap();
            (
                a2.estimates,
                a3.estimates,
                add.estimates,
                ms.estimates,
                solver.total_rounds(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stage_profiling_changes_neither_estimates_nor_rounds() {
        // Same contract as path recording: timing is observed, never fed
        // back — per pipeline, estimates AND charged rounds are
        // bit-identical with profiling on or off.
        let g = generators::caveman(6, 6);
        let run = |profile: bool| {
            let mut solver = SolverBuilder::new(g.clone())
                .eps(0.5)
                .execution(Execution::Seeded(5))
                .profile_stages(profile)
                .build()
                .unwrap();
            let a2 = solver.apsp_2eps().unwrap();
            let a3 = solver.apsp_3eps().unwrap();
            let add = solver.apsp_near_additive().unwrap();
            let ms = solver.mssp(&[0, 14, 28]).unwrap();
            let oracle = solver.freeze().unwrap();
            (
                a2.estimates,
                a3.estimates,
                add.estimates,
                ms.estimates,
                oracle,
                solver.total_rounds(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stage_profiling_records_only_when_enabled() {
        let g = generators::caveman(6, 6);
        let mut off = SolverBuilder::new(g.clone())
            .execution(Execution::Seeded(5))
            .build()
            .unwrap();
        assert!(!off.profiles_stages());
        off.apsp_2eps().unwrap();
        off.freeze().unwrap();
        assert!(
            off.stage_times().is_empty(),
            "disabled recorder stays empty"
        );
        // The ledger lines render regardless; no stage lines when off.
        let text = off.profile_exposition();
        assert!(text.contains("cc_solver_rounds_total "));
        assert!(!text.contains("cc_solver_stage_ns"));

        let mut on = SolverBuilder::new(g)
            .execution(Execution::Seeded(5))
            .profile_stages(true)
            .build()
            .unwrap();
        assert!(on.profiles_stages());
        on.apsp_2eps().unwrap();
        on.mssp(&[0, 14]).unwrap();
        on.freeze().unwrap();
        let names: Vec<&str> = on.stage_times().iter().map(|(n, _)| *n).collect();
        for expected in [
            "apsp2",
            "emulator_build",
            "freeze",
            "hitting_sets",
            "hopset_build",
            "minplus_products",
            "mssp",
        ] {
            assert!(names.contains(&expected), "missing stage {expected}");
        }
        for (name, stat) in on.stage_times() {
            assert!(stat.calls > 0, "stage {name} recorded no calls");
        }
        let text = on.profile_exposition();
        assert!(text.contains("cc_solver_stage_ns{stage=\"hopset_build\"}"));
        assert!(text.contains("cc_solver_stage_calls{stage=\"freeze\"} 1"));
        assert!(text.contains("cc_solver_phase_rounds{phase="));
    }

    #[test]
    fn freeze_with_paths_serves_verified_routes() {
        let g = generators::caveman(6, 6);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(8))
            .record_paths(true)
            .build()
            .unwrap();
        solver.apsp_2eps().unwrap();
        solver.mssp(&[0, 9, 18]).unwrap();
        let oracle = solver.freeze_with_paths().unwrap();
        let dist_oracle = solver.freeze().unwrap();
        assert_eq!(*oracle.dist_oracle(), dist_oracle, "same frozen distances");
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                match (oracle.path(u, v), dist_oracle.dist(u, v)) {
                    (Some(route), Some(est)) => assert_route_valid(&g, &exact, &route, est),
                    (None, None) => {}
                    (p, d) => panic!("route/dist coverage mismatch at ({u},{v}): {p:?} {d:?}"),
                }
            }
        }
    }

    #[test]
    fn freeze_with_paths_requires_recording() {
        let g = generators::cycle(24);
        let mut solver = SolverBuilder::new(g)
            .execution(Execution::Seeded(1))
            .build()
            .unwrap();
        solver.apsp_near_additive().unwrap();
        let err = solver.freeze_with_paths().unwrap_err();
        assert!(matches!(err, CcError::UnsupportedQuery { .. }));
        assert!(err.to_string().contains("record_paths"));
        assert!(!solver.records_paths());
    }

    #[test]
    fn path_oracle_round_trips_through_ccro_snapshot() {
        let g = generators::caveman(5, 5);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Deterministic)
            .record_paths(true)
            .build()
            .unwrap();
        solver.apsp_3eps().unwrap();
        solver.mssp(&[0, 12]).unwrap();
        let oracle = solver.freeze_with_paths().unwrap();
        let mut buf = Vec::new();
        oracle.save(&mut buf).unwrap();
        let back = crate::PathOracle::load(&mut &buf[..]).unwrap();
        assert_eq!(back, oracle);
        for u in (0..g.n()).step_by(3) {
            for v in (0..g.n()).step_by(4) {
                assert_eq!(back.path(u, v), oracle.path(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn deterministic_sessions_reproduce() {
        let g = generators::caveman(6, 6);
        let run = || {
            let mut solver = SolverBuilder::new(g.clone())
                .eps(0.25)
                .execution(Execution::Deterministic)
                .build()
                .unwrap();
            solver.apsp_near_additive().unwrap().estimates
        };
        assert_eq!(run(), run());
    }
}
