//! The frozen, `Arc`-shareable read side of a solved session: [`DistOracle`].
//!
//! The paper's pipelines do all their expensive work up front — hopsets,
//! hitting sets, `O(log²n/ε)` rounds of emulation — and their output is a
//! *static* table of distance estimates. This module freezes that output
//! into an immutable oracle that
//!
//! * answers [`dist`](DistOracle::dist), [`dist_batch`](DistOracle::dist_batch),
//!   [`dists_from`](DistOracle::dists_from) and
//!   [`k_nearest`](DistOracle::k_nearest) lock-free from any number of
//!   threads (`&self` everywhere, `DistOracle: Send + Sync`);
//! * tags **every answer with its provenance** — a [`Guarantee`] naming the
//!   pipeline that produced the winning estimate and the `ε` it ran with,
//!   instead of a bare `Option<Dist>`;
//! * stores the table in the most compact [`DistStorage`] layout for its
//!   shape (square, symmetric-packed triangle, or source rows only), chosen
//!   automatically at freeze time;
//! * persists to a versioned binary snapshot
//!   ([`save`](DistOracle::save)/[`load`](DistOracle::load), no external
//!   dependencies) so a solved substrate can be served by a fresh process.
//!
//! ```
//! use std::sync::Arc;
//! use cc_core::{Execution, SolverBuilder};
//! use cc_graphs::generators;
//!
//! let g = generators::caveman(6, 6);
//! let mut solver = SolverBuilder::new(g)
//!     .eps(0.5)
//!     .execution(Execution::Seeded(7))
//!     .build()?;
//! solver.apsp_2eps()?;
//! let oracle = Arc::new(solver.freeze()?);
//! let answer = oracle.dist(0, 20).expect("estimate frozen");
//! assert!(answer.dist >= 1);
//! println!("d(0,20) ≤ {} under {}", answer.dist, answer.guarantee);
//! # Ok::<(), cc_core::CcError>(())
//! ```

use std::borrow::Cow;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use cc_graphs::{ByteOwner, Dist, DistStorage, PodData, StorageKind, INF};

use crate::estimates::DistanceMatrix;
use crate::snapshot::header::{fnv1a, Cursor};
use crate::snapshot::v2::{owner_from_bytes, SectionWriter, SnapshotView};

pub use crate::snapshot::header::SnapshotError;

/// Which pipeline an estimate came from — the shape of its proven bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuaranteeKind {
    /// `(2+ε)`-approximate APSP (Thm 4/34).
    Mult2Eps,
    /// `(3+ε)`-approximate APSP (the §4.3 warm-up).
    Mult3Eps,
    /// `(1+ε, β)`-approximate APSP (Thm 5/32).
    NearAdditive,
    /// `(1+ε)`-approximate MSSP from `O(√n)` sources (Thm 3/33).
    Mssp,
}

impl GuaranteeKind {
    /// Stable wire tag (snapshot format v1).
    fn wire(self) -> u8 {
        match self {
            GuaranteeKind::Mult2Eps => 0,
            GuaranteeKind::Mult3Eps => 1,
            GuaranteeKind::NearAdditive => 2,
            GuaranteeKind::Mssp => 3,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => GuaranteeKind::Mult2Eps,
            1 => GuaranteeKind::Mult3Eps,
            2 => GuaranteeKind::NearAdditive,
            3 => GuaranteeKind::Mssp,
            _ => return None,
        })
    }

    /// Strength rank used for tie-breaking: lower is stronger. Orders by
    /// multiplicative quality at the short range the guarantees are proven
    /// for: `1+ε` (MSSP) < `(1+ε)d + β` < `2+ε` < `3+ε`.
    fn rank(self) -> u8 {
        match self {
            GuaranteeKind::Mssp => 0,
            GuaranteeKind::NearAdditive => 1,
            GuaranteeKind::Mult2Eps => 2,
            GuaranteeKind::Mult3Eps => 3,
        }
    }
}

/// The provenance of a frozen estimate: which pipeline proved it, with which
/// accuracy parameters. Every oracle answer carries one.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Guarantee {
    /// The pipeline / bound shape.
    pub kind: GuaranteeKind,
    /// The multiplicative slack `ε` of the bound (`2+ε`, `3+ε`, `1+ε`).
    pub eps: f64,
    /// The additive part `β` ([`GuaranteeKind::NearAdditive`] only; `0`
    /// otherwise).
    pub additive: f64,
}

impl Guarantee {
    /// `(2+ε)`-APSP provenance.
    pub fn mult2(eps: f64) -> Self {
        Guarantee {
            kind: GuaranteeKind::Mult2Eps,
            eps,
            additive: 0.0,
        }
    }

    /// `(3+ε)`-APSP provenance.
    pub fn mult3(eps: f64) -> Self {
        Guarantee {
            kind: GuaranteeKind::Mult3Eps,
            eps,
            additive: 0.0,
        }
    }

    /// `(1+ε, β)`-APSP provenance.
    pub fn near_additive(eps: f64, beta: f64) -> Self {
        Guarantee {
            kind: GuaranteeKind::NearAdditive,
            eps,
            additive: beta,
        }
    }

    /// `(1+ε)`-MSSP provenance.
    pub fn mssp(eps: f64) -> Self {
        Guarantee {
            kind: GuaranteeKind::Mssp,
            eps,
            additive: 0.0,
        }
    }

    /// The proven upper bound on an estimate for a pair at true distance
    /// `d` (the short-range bound; long-range pairs are only ever better).
    pub fn bound(&self, d: Dist) -> f64 {
        let d = d as f64;
        match self.kind {
            GuaranteeKind::Mult2Eps => (2.0 + self.eps) * d,
            GuaranteeKind::Mult3Eps => (3.0 + self.eps) * d,
            GuaranteeKind::NearAdditive => (1.0 + self.eps) * d + self.additive,
            GuaranteeKind::Mssp => (1.0 + self.eps) * d,
        }
    }

    /// Total-order key: lower sorts stronger. Ranks by bound shape first,
    /// then smaller `ε`, then smaller `β` (all are non-negative, so the IEEE
    /// bit patterns order correctly).
    fn strength(&self) -> (u8, u64, u64) {
        (
            self.kind.rank(),
            self.eps.to_bits(),
            self.additive.to_bits(),
        )
    }

    /// `true` when `self` is strictly stronger provenance than `other`
    /// (used to break equal-distance ties deterministically).
    pub fn stronger_than(&self, other: &Guarantee) -> bool {
        self.strength() < other.strength()
    }
}

impl std::fmt::Display for Guarantee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            GuaranteeKind::Mult2Eps => write!(f, "(2+{:.3})·d [apsp2]", self.eps),
            GuaranteeKind::Mult3Eps => write!(f, "(3+{:.3})·d [apsp3]", self.eps),
            GuaranteeKind::NearAdditive => {
                write!(
                    f,
                    "(1+{:.3})·d+{:.0} [near-additive]",
                    self.eps, self.additive
                )
            }
            GuaranteeKind::Mssp => write!(f, "(1+{:.3})·d [mssp]", self.eps),
        }
    }
}

/// One oracle answer: the estimate and the provenance it is proven under.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PointEstimate {
    /// The frozen estimate `δ(u, v)` (`d_G(u,v) ≤ δ`).
    pub dist: Dist,
    /// The bound `δ` satisfies.
    pub guarantee: Guarantee,
}

/// An immutable, `Arc`-shareable distance oracle over solved estimates.
///
/// Built by [`crate::Solver::freeze`] or the per-pipeline `into_oracle()`
/// conversions ([`crate::apsp2::Apsp2::into_oracle`], …). All query methods
/// take `&self` and touch only frozen data, so one oracle behind an
/// [`std::sync::Arc`] serves any number of threads without locks; answers
/// are bit-identical to a serial replay.
///
/// Provenance is tracked per entry: a small [`Guarantee`] table plus an
/// optional byte tag per stored entry (elided when the whole table shares
/// one guarantee, which keeps single-pipeline oracles at 4 bytes/entry).
#[derive(Clone, PartialEq, Debug)]
pub struct DistOracle {
    storage: DistStorage,
    /// Provenance table; `tags` index into it. Never empty.
    guarantees: Vec<Guarantee>,
    /// Per-entry provenance (same indexing as `storage` entries), or `None`
    /// when every entry is covered by `guarantees[0]`. [`PodData`] so v2
    /// snapshots serve it in place.
    tags: Option<PodData<u8>>,
}

/// Vertex ids are `u32` on the wire and in row-sparse source tables. The
/// oracles these conversions serve are built from n-by-n tables that exist
/// in memory, so `n` is far below `u32::MAX`; debug builds assert it.
fn vertex_id(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "vertex id exceeds u32");
    // cc-analyze: allow(narrowing-cast) — bounded by the table fitting in memory.
    i as u32
}

impl DistOracle {
    /// Freezes a storage under a single uniform guarantee.
    pub fn from_storage(storage: DistStorage, guarantee: Guarantee) -> Self {
        DistOracle {
            storage,
            guarantees: vec![guarantee],
            tags: None,
        }
    }

    /// Freezes an estimate matrix under a single guarantee, into the given
    /// layout. [`StorageKind::RowSparse`] keeps every row (useful as a
    /// layout-sweep vehicle for benches and tests; real row-sparse oracles
    /// come from [`crate::mssp::Mssp::into_oracle`]).
    pub fn from_matrix(m: &DistanceMatrix, guarantee: Guarantee, kind: StorageKind) -> Self {
        let n = m.n();
        let storage = match kind {
            StorageKind::Full => DistStorage::full(n, m.to_flat()),
            StorageKind::SymmetricPacked => DistStorage::symmetric_packed(n, m.to_packed()),
            StorageKind::RowSparse => {
                DistStorage::row_sparse(n, (0..vertex_id(n)).collect::<Vec<_>>(), m.to_flat())
            }
        };
        DistOracle::from_storage(storage, guarantee)
    }

    /// Assembles an oracle from pre-merged packed data with per-entry tags
    /// (the [`crate::Solver::freeze`] path). Collapses the tag array when
    /// only one guarantee is referenced.
    pub(crate) fn from_tagged_packed(
        n: usize,
        data: Vec<Dist>,
        tags: Vec<u8>,
        guarantees: Vec<Guarantee>,
    ) -> Self {
        assert!(!guarantees.is_empty(), "at least one guarantee required");
        assert_eq!(data.len(), tags.len(), "one tag per entry");
        let tags = if guarantees.len() > 1 {
            Some(tags.into())
        } else {
            None
        };
        DistOracle {
            storage: DistStorage::symmetric_packed(n, data),
            guarantees,
            tags,
        }
    }

    /// Dimension `n` (vertices are `0..n`).
    pub fn n(&self) -> usize {
        self.storage.n()
    }

    /// The frozen storage.
    pub fn storage(&self) -> &DistStorage {
        &self.storage
    }

    /// The storage layout.
    pub fn storage_kind(&self) -> StorageKind {
        self.storage.kind()
    }

    /// Payload bytes held by the oracle: distance entries (plus the source
    /// list for row-sparse layouts) plus per-entry provenance tags, if any.
    pub fn storage_bytes(&self) -> usize {
        self.storage.bytes() + self.tags.as_ref().map_or(0, |t| t.len())
    }

    /// The provenance table answers are tagged from.
    pub fn guarantees(&self) -> &[Guarantee] {
        &self.guarantees
    }

    /// The strongest guarantee in the table (diagonal answers use it).
    fn strongest(&self) -> Guarantee {
        // Constructors and loaders both reject empty tables; the fallback
        // (the weakest representable provenance) only keeps this total.
        self.guarantees
            .iter()
            .copied()
            .reduce(|a, b| if b.stronger_than(&a) { b } else { a })
            .unwrap_or(Guarantee::mult3(f64::INFINITY))
    }

    #[inline]
    fn tag_of(&self, entry: usize) -> Guarantee {
        match &self.tags {
            Some(tags) => self.guarantees[tags[entry] as usize],
            None => self.guarantees[0],
        }
    }

    /// The frozen estimate for `(u, v)` with its provenance, or `None` when
    /// out of range or no estimate was frozen for the pair. `dist(u, u)` is
    /// always `0` (exact under any guarantee; tagged with the strongest in
    /// the table).
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> Option<PointEstimate> {
        let n = self.n();
        if u >= n || v >= n {
            return None;
        }
        if u == v {
            return Some(PointEstimate {
                dist: 0,
                guarantee: self.strongest(),
            });
        }
        match self.storage.lookup(u, v) {
            Some((d, entry)) if d < INF => Some(PointEstimate {
                dist: d,
                guarantee: self.tag_of(entry),
            }),
            _ => None,
        }
    }

    /// Answers a batch of point queries in order. Exactly equivalent to
    /// mapping [`DistOracle::dist`] over `pairs`; the batch form amortizes
    /// call overhead in high-throughput serving loops.
    pub fn dist_batch(&self, pairs: &[(usize, usize)]) -> Vec<Option<PointEstimate>> {
        let mut out = Vec::new();
        self.dist_batch_into(pairs, &mut out);
        out
    }

    /// [`DistOracle::dist_batch`] into a caller-provided buffer (cleared
    /// first) — the allocation-free form serving workers reuse per batch.
    pub fn dist_batch_into(&self, pairs: &[(usize, usize)], out: &mut Vec<Option<PointEstimate>>) {
        out.clear();
        out.reserve(pairs.len());
        out.extend(pairs.iter().map(|&(u, v)| self.dist(u, v)));
    }

    /// The full estimate row of `u` (`row[v] = δ(u, v)`, [`INF`] where no
    /// estimate is frozen). Borrows storage directly where the layout holds
    /// a contiguous row (`Full`; `RowSparse` when `u` is a source) and
    /// materializes otherwise, so hot serving paths on row-addressable
    /// layouts are copy-free.
    ///
    /// # Panics
    ///
    /// Panics if `u ≥ n`.
    pub fn dists_from(&self, u: usize) -> Cow<'_, [Dist]> {
        assert!(u < self.n(), "vertex {u} out of range for n = {}", self.n());
        match self.storage.row(u) {
            Some(row) => Cow::Borrowed(row),
            None => {
                let mut out = vec![INF; self.n()];
                self.storage.copy_row(u, &mut out);
                Cow::Owned(out)
            }
        }
    }

    /// The `k` nearest vertices to `u` among the frozen finite estimates,
    /// sorted by `(distance, vertex id)` — deterministic across layouts and
    /// threads. `u` itself is excluded; fewer than `k` entries are returned
    /// when fewer estimates exist.
    ///
    /// Selection runs in `O(n + k log k)`: a `select_nth_unstable` partition
    /// on the full `(distance, id)` key isolates the `k` smallest entries,
    /// and only that prefix is sorted — the previous full `O(n log n)` sort
    /// of every finite entry is gone. The full key makes the partition cut
    /// deterministic even through runs of equal distances.
    ///
    /// # Panics
    ///
    /// Panics if `u ≥ n`.
    pub fn k_nearest(&self, u: usize, k: usize) -> Vec<(u32, Dist)> {
        let row = self.dists_from(u);
        let mut near: Vec<(u32, Dist)> = row
            .iter()
            .enumerate()
            .filter(|&(v, &d)| v != u && d < INF)
            .map(|(v, &d)| (vertex_id(v), d))
            .collect();
        if k < near.len() {
            near.select_nth_unstable_by_key(k, |&(v, d)| (d, v));
            near.truncate(k);
        }
        near.sort_unstable_by_key(|&(v, d)| (d, v));
        near
    }

    /// Number of ordered off-diagonal pairs with a frozen finite estimate.
    pub fn finite_pairs(&self) -> usize {
        let n = self.n();
        let mut count = 0;
        for u in 0..n {
            let row = self.dists_from(u);
            count += row
                .iter()
                .enumerate()
                .filter(|&(v, &d)| v != u && d < INF)
                .count();
        }
        count
    }

    /// Re-freezes the same answers into another layout, preserving
    /// per-entry provenance. Converting to [`StorageKind::SymmetricPacked`]
    /// keeps the min over both orientations (all oracles in this crate are
    /// symmetric already); converting to [`StorageKind::RowSparse`] keeps
    /// the existing source set, or every row when coming from a square
    /// layout.
    pub fn with_layout(&self, kind: StorageKind) -> DistOracle {
        let n = self.n();
        // (value, tag) for one ordered pair, INF/0 when absent.
        let cell = |u: usize, v: usize| -> (Dist, u8) {
            match self.storage.lookup(u, v) {
                Some((d, entry)) => (d, self.tags.as_ref().map_or(0, |t| t[entry])),
                None => (INF, 0),
            }
        };
        let (storage, tags) = match kind {
            StorageKind::Full => {
                let mut data = vec![INF; n * n];
                let mut tags = vec![0u8; n * n];
                for u in 0..n {
                    for v in 0..n {
                        let (d, t) = cell(u, v);
                        data[u * n + v] = d;
                        tags[u * n + v] = t;
                    }
                }
                (DistStorage::full(n, data), tags)
            }
            StorageKind::SymmetricPacked => {
                let mut data = Vec::with_capacity(n * (n + 1) / 2);
                let mut tags = Vec::with_capacity(n * (n + 1) / 2);
                for u in 0..n {
                    for v in u..n {
                        // Min over both orientations: every oracle in this
                        // crate is symmetric already, but a hand-built Full
                        // table may not be, and the packed layout can only
                        // keep one value per pair.
                        let (d1, t1) = cell(u, v);
                        let (d2, t2) = cell(v, u);
                        let (d, t) = if d2 < d1 { (d2, t2) } else { (d1, t1) };
                        data.push(d);
                        tags.push(t);
                    }
                }
                (DistStorage::symmetric_packed(n, data), tags)
            }
            StorageKind::RowSparse => {
                let sources: Vec<u32> = match self.storage.sources() {
                    Some(s) => s.to_vec(),
                    None => (0..vertex_id(n)).collect(),
                };
                let mut data = Vec::with_capacity(sources.len() * n);
                let mut tags = Vec::with_capacity(sources.len() * n);
                for &s in &sources {
                    for v in 0..n {
                        let (d, t) = cell(s as usize, v);
                        data.push(d);
                        tags.push(t);
                    }
                }
                (DistStorage::row_sparse(n, sources, data), tags)
            }
        };
        DistOracle {
            storage,
            guarantees: self.guarantees.clone(),
            tags: if self.guarantees.len() > 1 {
                Some(tags.into())
            } else {
                None
            },
        }
    }

    // ── Snapshot format ──────────────────────────────────────────────────
    //
    // Version 1, all integers and float bit patterns little-endian:
    //
    //   magic  b"CCDO"                                    4 bytes
    //   version u16 = 1                                   2
    //   flags   u8 (bit0: per-entry tags present)         1
    //   kind    u8 (0 full, 1 symmetric, 2 row-sparse)    1
    //   n       u64                                       8
    //   G       u16 guarantee count                       2
    //   G × { kind u8, eps f64 bits, additive f64 bits }  17 each
    //   [row-sparse only] S u64, then S × source u32      8 + 4S
    //   E       u64 entry count                           8
    //   E × entry u32                                     4E
    //   [tags]  E × tag u8                                E
    //   checksum u64: FNV-1a over every preceding byte    8

    /// The guarantee count as its wire type, or [`SnapshotError::TooLarge`]
    /// when the table exceeds the format maximum both loaders enforce.
    fn checked_guarantee_count(&self) -> Result<u16, SnapshotError> {
        u16::try_from(self.guarantees.len())
            .ok()
            .filter(|&c| c as usize <= MAX_GUARANTEES)
            .ok_or(SnapshotError::TooLarge {
                what: "guarantee count",
                count: self.guarantees.len(),
                max: MAX_GUARANTEES,
            })
    }

    /// Serializes the oracle into the versioned binary snapshot format
    /// (documented in `DESIGN.md` §2.2) and writes it to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; a guarantee table larger than the
    /// format's 256-row maximum surfaces as [`SnapshotError::TooLarge`]
    /// (wrapped in `InvalidData`) instead of silently truncating the `u16`
    /// count field.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let g_count = self.checked_guarantee_count()?;
        let mut buf: Vec<u8> = Vec::with_capacity(32 + self.storage.entries() * 5);
        buf.extend_from_slice(b"CCDO");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(u8::from(self.tags.is_some()));
        buf.push(match self.storage.kind() {
            StorageKind::Full => 0,
            StorageKind::SymmetricPacked => 1,
            StorageKind::RowSparse => 2,
        });
        buf.extend_from_slice(&(self.n() as u64).to_le_bytes());
        buf.extend_from_slice(&g_count.to_le_bytes());
        for g in &self.guarantees {
            buf.push(g.kind.wire());
            buf.extend_from_slice(&g.eps.to_bits().to_le_bytes());
            buf.extend_from_slice(&g.additive.to_bits().to_le_bytes());
        }
        if let Some(sources) = self.storage.sources() {
            buf.extend_from_slice(&(sources.len() as u64).to_le_bytes());
            for &s in sources {
                buf.extend_from_slice(&s.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.storage.entries() as u64).to_le_bytes());
        for &d in self.storage.data() {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        if let Some(tags) = &self.tags {
            buf.extend_from_slice(tags);
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        w.write_all(&buf)
    }

    /// Reads a snapshot produced by [`DistOracle::save`] (v1) or
    /// [`DistOracle::save_v2`], dispatching on the version field. The
    /// result is bit-identical to the oracle that was saved (validated by
    /// the checksum, structural length checks and tag-range checks).
    ///
    /// Magic and version are inspected **before** the checksum: a snapshot
    /// written by a future format version (whose trailing bytes this build
    /// cannot even locate) reports [`SnapshotError::UnsupportedVersion`],
    /// not a misleading checksum mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for I/O failures, a wrong magic, an
    /// unsupported version, or a corrupt/truncated payload.
    pub fn load<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_snapshot_bytes(&buf)
    }

    /// [`DistOracle::load`] over an in-memory snapshot. v2 bytes are copied
    /// once into an aligned owner so the hot tables can be viewed in place;
    /// use [`DistOracle::load_v2_shared`] to serve an existing owner (a
    /// mapped file) with no copy at all.
    pub fn from_snapshot_bytes(buf: &[u8]) -> Result<Self, SnapshotError> {
        let (magic, version) = crate::snapshot::sniff(buf)?;
        if &magic != b"CCDO" {
            return Err(SnapshotError::BadMagic(magic));
        }
        match version {
            1 => Self::load_v1(buf),
            2 => Self::load_v2_shared(owner_from_bytes(buf)),
            v => Err(SnapshotError::UnsupportedVersion(v)),
        }
    }

    /// Loads a v2 snapshot directly from a stable byte owner (an `mmap`'d
    /// file, an [`cc_graphs::AlignedBytes`] buffer): the distance entries,
    /// tags and sources become zero-copy views into the owner on
    /// little-endian targets.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`DistOracle::load`] does; a v1 owner
    /// reports [`SnapshotError::UnsupportedVersion`] (convert it first).
    pub fn load_v2_shared(owner: Arc<dyn ByteOwner>) -> Result<Self, SnapshotError> {
        let view = SnapshotView::parse(owner, b"CCDO")?;
        Self::load_v2(&view)
    }

    fn load_v1(buf: &[u8]) -> Result<Self, SnapshotError> {
        let payload = crate::snapshot::header::checked_payload(buf, b"CCDO", 1)?;
        let mut c = Cursor::new(payload);
        let _ = c.take_n::<4>()?; // magic, validated above
        let _ = c.take_n::<2>()?; // version, validated above
        let flags = c.take_n::<1>()?[0];
        if flags > 1 {
            return Err(SnapshotError::corrupt("unknown flag bits"));
        }
        let kind = c.take_n::<1>()?[0];
        let n = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("n exceeds the address space"))?;
        let g_count = u16::from_le_bytes(c.take_n::<2>()?) as usize;
        if g_count == 0 || g_count > 256 {
            return Err(SnapshotError::corrupt("guarantee count out of range"));
        }
        let mut guarantees = Vec::with_capacity(g_count);
        for _ in 0..g_count {
            let kind = GuaranteeKind::from_wire(c.take_n::<1>()?[0])
                .ok_or_else(|| SnapshotError::corrupt("unknown guarantee kind"))?;
            let eps = f64::from_bits(u64::from_le_bytes(c.take_n::<8>()?));
            let additive = f64::from_bits(u64::from_le_bytes(c.take_n::<8>()?));
            guarantees.push(Guarantee {
                kind,
                eps,
                additive,
            });
        }
        // Counts below come from the (forgeable) header: every allocation
        // is bounded by the bytes actually present before reserving.
        let sources: Option<Vec<u32>> = if kind == 2 {
            let s_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
                .map_err(|_| SnapshotError::corrupt("source count exceeds the address space"))?;
            // With ≥ 1 source the entry array has ≥ n entries, so the
            // remaining-bytes check below bounds `n` (and the O(n) source
            // index built at construction). Zero sources would leave `n`
            // unbounded by any stored bytes.
            if s_count == 0 {
                return Err(SnapshotError::corrupt(
                    "row-sparse snapshot with no sources",
                ));
            }
            if c.remaining() / 4 < s_count {
                return Err(SnapshotError::corrupt("truncated source list"));
            }
            let mut sources = Vec::with_capacity(s_count);
            for _ in 0..s_count {
                let s = u32::from_le_bytes(c.take_n::<4>()?);
                if s as usize >= n {
                    return Err(SnapshotError::corrupt("source out of range"));
                }
                sources.push(s);
            }
            Some(sources)
        } else {
            None
        };
        let entries = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("entry count exceeds the address space"))?;
        let expected = match kind {
            0 => n.checked_mul(n),
            1 => n
                .checked_add(1)
                .and_then(|m| n.checked_mul(m))
                .map(|x| x / 2),
            2 => sources.as_ref().and_then(|s| s.len().checked_mul(n)),
            _ => return Err(SnapshotError::corrupt("unknown storage kind")),
        };
        if expected != Some(entries) {
            return Err(SnapshotError::corrupt("entry count does not match layout"));
        }
        if c.remaining() / 4 < entries {
            return Err(SnapshotError::corrupt("truncated entry array"));
        }
        let mut data = Vec::with_capacity(entries);
        for _ in 0..entries {
            data.push(u32::from_le_bytes(c.take_n::<4>()?));
        }
        let tags = if flags & 1 == 1 {
            let raw = c.take(entries)?.to_vec();
            if raw.iter().any(|&t| t as usize >= g_count) {
                return Err(SnapshotError::corrupt("tag beyond guarantee table"));
            }
            Some(raw.into())
        } else {
            None
        };
        if !c.at_end() {
            return Err(SnapshotError::corrupt("trailing bytes after payload"));
        }
        let storage = match (kind, sources) {
            (0, _) => DistStorage::full(n, data),
            (1, _) => DistStorage::symmetric_packed(n, data),
            (_, Some(sources)) => DistStorage::row_sparse(n, sources, data),
            (_, None) => {
                return Err(SnapshotError::corrupt(
                    "row-sparse snapshot with no sources",
                ))
            }
        };
        Ok(DistOracle {
            storage,
            guarantees,
            tags,
        })
    }

    // ── Snapshot format v2 ───────────────────────────────────────────────
    //
    // The v2 frame and directory are documented in `crate::snapshot::v2`
    // (and DESIGN.md §9). CCDO sections:
    //
    //   1 META        kind u8, flags u8, pad[6], n u64, entries u64,
    //                 source_count u64, guarantee_count u64      (40 bytes)
    //   2 GUARANTEES  count × { kind u8, eps f64 bits, additive f64 bits }
    //   3 SOURCES     [row-sparse only] source_count × u32
    //   4 ENTRIES     entries × u32                              (hot)
    //   5 TAGS        [flags bit0] entries × u8                  (hot)

    /// Serializes the oracle into snapshot format v2 — the aligned-section
    /// layout [`DistOracle::load_v2_shared`] serves zero-copy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; an unrepresentable table (see
    /// [`DistOracle::save`]) surfaces as `InvalidData`.
    pub fn save_v2<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let bytes = self.to_v2_bytes()?;
        w.write_all(&bytes)
    }

    /// [`DistOracle::save_v2`] to a filesystem path, crash-safely
    /// ([`crate::snapshot::write_atomic`]): a crash mid-save leaves the
    /// previous snapshot untouched, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_v2_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        self.save_v2(&mut bytes)?;
        crate::snapshot::write_atomic(path.as_ref(), &bytes)
    }

    pub(crate) fn to_v2_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let _ = self.checked_guarantee_count()?;
        let mut w = SectionWriter::new(b"CCDO");
        let sources = self.storage.sources();
        let mut meta = Vec::with_capacity(40);
        meta.push(match self.storage.kind() {
            StorageKind::Full => 0,
            StorageKind::SymmetricPacked => 1,
            StorageKind::RowSparse => 2,
        });
        meta.push(u8::from(self.tags.is_some()));
        meta.extend_from_slice(&[0u8; 6]);
        meta.extend_from_slice(&(self.n() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.storage.entries() as u64).to_le_bytes());
        meta.extend_from_slice(&(sources.map_or(0, <[u32]>::len) as u64).to_le_bytes());
        meta.extend_from_slice(&(self.guarantees.len() as u64).to_le_bytes());
        w.section(SEC_META, &meta);
        let mut gbytes = Vec::with_capacity(self.guarantees.len() * 17);
        for g in &self.guarantees {
            gbytes.push(g.kind.wire());
            gbytes.extend_from_slice(&g.eps.to_bits().to_le_bytes());
            gbytes.extend_from_slice(&g.additive.to_bits().to_le_bytes());
        }
        w.section(SEC_GUARANTEES, &gbytes);
        if let Some(sources) = sources {
            w.section_u32(SEC_SOURCES, sources);
        }
        w.section_u32(SEC_ENTRIES, self.storage.data());
        if let Some(tags) = &self.tags {
            w.section(SEC_TAGS, tags);
        }
        w.finish()
    }

    /// Loads a v2 snapshot from a validated [`SnapshotView`].
    pub(crate) fn load_v2(view: &SnapshotView) -> Result<Self, SnapshotError> {
        let meta = view.bytes_of(SEC_META, "CCDO meta")?;
        let mut c = Cursor::new(meta);
        let kind = c.take_n::<1>()?[0];
        let flags = c.take_n::<1>()?[0];
        if flags > 1 {
            return Err(SnapshotError::corrupt("unknown flag bits"));
        }
        let _ = c.take(6)?; // padding
        let n = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("n exceeds the address space"))?;
        let entries = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("entry count exceeds the address space"))?;
        let source_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("source count exceeds the address space"))?;
        let g_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("guarantee count exceeds the address space"))?;
        if !c.at_end() {
            return Err(SnapshotError::corrupt("CCDO meta section length mismatch"));
        }
        if g_count == 0 || g_count > 256 {
            return Err(SnapshotError::corrupt("guarantee count out of range"));
        }
        let gbytes = view.bytes_of(SEC_GUARANTEES, "guarantee")?;
        if gbytes.len() != g_count * 17 {
            return Err(SnapshotError::corrupt("guarantee section length mismatch"));
        }
        let mut guarantees = Vec::with_capacity(g_count);
        let mut gc = Cursor::new(gbytes);
        for _ in 0..g_count {
            let kind = GuaranteeKind::from_wire(gc.take_n::<1>()?[0])
                .ok_or_else(|| SnapshotError::corrupt("unknown guarantee kind"))?;
            let eps = f64::from_bits(u64::from_le_bytes(gc.take_n::<8>()?));
            let additive = f64::from_bits(u64::from_le_bytes(gc.take_n::<8>()?));
            guarantees.push(Guarantee {
                kind,
                eps,
                additive,
            });
        }
        // Entry count vs. declared layout, before touching the (large)
        // sections: the section length checks inside u8_data/u32_data then
        // bound every decode-copy by bytes actually present, and the shared
        // path allocates nothing.
        let expected = match kind {
            0 => n.checked_mul(n),
            1 => n
                .checked_add(1)
                .and_then(|m| n.checked_mul(m))
                .map(|x| x / 2),
            2 => {
                // ≥ 1 source keeps `n ≤ entries`, bounding the O(n) source
                // index built below by the entry section's byte length.
                if source_count == 0 {
                    return Err(SnapshotError::corrupt(
                        "row-sparse snapshot with no sources",
                    ));
                }
                source_count.checked_mul(n)
            }
            _ => return Err(SnapshotError::corrupt("unknown storage kind")),
        };
        if expected != Some(entries) {
            return Err(SnapshotError::corrupt("entry count does not match layout"));
        }
        let sources = if kind == 2 {
            let sources = view.u32_data(SEC_SOURCES, source_count, "source")?;
            if sources.iter().any(|&s| s as usize >= n) {
                return Err(SnapshotError::corrupt("source out of range"));
            }
            Some(sources)
        } else {
            if source_count != 0 {
                return Err(SnapshotError::corrupt("sources on a non-row-sparse layout"));
            }
            None
        };
        let data = view.u32_data(SEC_ENTRIES, entries, "entry")?;
        let tags = if flags & 1 == 1 {
            let tags = view.u8_data(SEC_TAGS, entries, "tag")?;
            if tags.iter().any(|&t| t as usize >= g_count) {
                return Err(SnapshotError::corrupt("tag beyond guarantee table"));
            }
            Some(tags)
        } else {
            None
        };
        let storage = match (kind, sources) {
            (0, _) => DistStorage::full(n, data),
            (1, _) => DistStorage::symmetric_packed(n, data),
            (_, Some(sources)) => DistStorage::row_sparse(n, sources, data),
            (_, None) => {
                return Err(SnapshotError::corrupt(
                    "row-sparse snapshot with no sources",
                ))
            }
        };
        Ok(DistOracle {
            storage,
            guarantees,
            tags,
        })
    }

    /// [`DistOracle::save`] to a filesystem path, crash-safely
    /// ([`crate::snapshot::write_atomic`]): a crash mid-save leaves the
    /// previous snapshot untouched, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        self.save(&mut bytes)?;
        crate::snapshot::write_atomic(path.as_ref(), &bytes)
    }

    /// [`DistOracle::load`] from a filesystem path.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`DistOracle::load`] does.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let mut f = std::fs::File::open(path)?;
        Self::load(&mut f)
    }
}

// Format maximum for the guarantee table, enforced symmetrically by the
// writers (as `SnapshotError::TooLarge`) and both loaders (as `Corrupt`):
// tags index the table through a u8, so 256 rows is all v1/v2 can address.
const MAX_GUARANTEES: usize = 256;

// CCDO v2 section ids (see the layout comment on `to_v2_bytes`).
const SEC_META: u16 = 1;
const SEC_GUARANTEES: u16 = 2;
const SEC_SOURCES: u16 = 3;
const SEC_ENTRIES: u16 = 4;
const SEC_TAGS: u16 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(n: usize) -> DistanceMatrix {
        let mut m = DistanceMatrix::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + v) % 3 != 0 {
                    m.improve(u, v, (v - u) as Dist);
                }
            }
        }
        m
    }

    #[test]
    fn layouts_answer_identically() {
        let m = sample_matrix(7);
        let g = Guarantee::mult2(0.5);
        let full = DistOracle::from_matrix(&m, g, StorageKind::Full);
        let sym = DistOracle::from_matrix(&m, g, StorageKind::SymmetricPacked);
        let sparse = DistOracle::from_matrix(&m, g, StorageKind::RowSparse);
        for u in 0..7 {
            for v in 0..7 {
                let a = full.dist(u, v);
                assert_eq!(a, sym.dist(u, v), "({u},{v})");
                assert_eq!(a, sparse.dist(u, v), "({u},{v})");
                if u == v {
                    assert_eq!(a.unwrap().dist, 0);
                } else if let Some(est) = a {
                    assert_eq!(est.dist, m.get(u, v));
                    assert_eq!(est.guarantee, g);
                }
            }
        }
        assert!(sym.storage_bytes() < full.storage_bytes());
    }

    #[test]
    fn batch_matches_point_queries() {
        let m = sample_matrix(6);
        let o = DistOracle::from_matrix(&m, Guarantee::mult3(0.25), StorageKind::SymmetricPacked);
        let pairs: Vec<(usize, usize)> = (0..6).flat_map(|u| (0..6).map(move |v| (u, v))).collect();
        let batch = o.dist_batch(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], o.dist(u, v));
        }
        assert_eq!(o.dist(9, 0), None, "out of range");
    }

    #[test]
    fn oversized_guarantee_table_fails_to_save_cleanly() {
        // 300 guarantees exceed the u8-indexed tag table; both writers must
        // surface TooLarge instead of truncating the u16 count (a 300-row
        // table written as `300 as u16` would round-trip as the wrong
        // provenance for every tagged answer).
        let n = 3;
        let entries = n * (n + 1) / 2;
        let guarantees: Vec<Guarantee> = (0..300).map(|i| Guarantee::mult2(i as f64)).collect();
        let o = DistOracle::from_tagged_packed(n, vec![1; entries], vec![0; entries], guarantees);
        let err = o.save(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("guarantee count"), "{err}");
        let err = o.save_v2(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        let err = o.to_v2_bytes().unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::TooLarge {
                    what: "guarantee count",
                    count: 300,
                    max: 256
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn dists_from_borrows_where_possible() {
        let m = sample_matrix(5);
        let g = Guarantee::near_additive(0.25, 4.0);
        let full = DistOracle::from_matrix(&m, g, StorageKind::Full);
        assert!(matches!(full.dists_from(2), Cow::Borrowed(_)));
        let sym = DistOracle::from_matrix(&m, g, StorageKind::SymmetricPacked);
        assert!(matches!(sym.dists_from(2), Cow::Owned(_)));
        assert_eq!(&full.dists_from(2)[..], &sym.dists_from(2)[..]);
    }

    #[test]
    fn k_nearest_is_sorted_and_tie_broken_by_id() {
        let mut m = DistanceMatrix::new(5);
        m.improve(0, 1, 2);
        m.improve(0, 2, 2);
        m.improve(0, 3, 1);
        let o = DistOracle::from_matrix(&m, Guarantee::mssp(0.5), StorageKind::Full);
        assert_eq!(o.k_nearest(0, 2), vec![(3, 1), (1, 2)]);
        assert_eq!(o.k_nearest(0, 10), vec![(3, 1), (1, 2), (2, 2)]);
        assert_eq!(o.k_nearest(4, 3), vec![], "no frozen estimates");
    }

    #[test]
    fn strength_ordering_prefers_tighter_bounds() {
        let mssp = Guarantee::mssp(0.5);
        let add = Guarantee::near_additive(0.5, 8.0);
        let two = Guarantee::mult2(0.5);
        let three = Guarantee::mult3(0.5);
        assert!(mssp.stronger_than(&add));
        assert!(add.stronger_than(&two));
        assert!(two.stronger_than(&three));
        assert!(Guarantee::mult2(0.25).stronger_than(&two));
        assert!(!two.stronger_than(&two));
    }

    #[test]
    fn snapshot_round_trips_all_layouts() {
        let m = sample_matrix(9);
        for kind in [
            StorageKind::Full,
            StorageKind::SymmetricPacked,
            StorageKind::RowSparse,
        ] {
            let o = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), kind);
            let mut buf = Vec::new();
            o.save(&mut buf).unwrap();
            let back = DistOracle::load(&mut &buf[..]).unwrap();
            assert_eq!(o, back, "{kind:?}");
            let mut again = Vec::new();
            back.save(&mut again).unwrap();
            assert_eq!(buf, again, "{kind:?}: re-save must be byte-identical");
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let m = sample_matrix(4);
        let o = DistOracle::from_matrix(&m, Guarantee::mssp(0.1), StorageKind::SymmetricPacked);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();

        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            DistOracle::load(&mut &flipped[..]),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        // Magic is validated before the checksum: the error names the cause.
        assert!(matches!(
            DistOracle::load(&mut &wrong_magic[..]),
            Err(SnapshotError::BadMagic(_))
        ));

        let truncated = &buf[..buf.len() - 9];
        assert!(DistOracle::load(&mut &truncated[..]).is_err());
        // Garbage that is long enough to carry a magic reports BadMagic;
        // anything shorter is Corrupt.
        assert!(matches!(
            DistOracle::load(&mut &b"1234567"[..]),
            Err(SnapshotError::BadMagic(_))
        ));
        assert!(matches!(
            DistOracle::load(&mut &b"1234"[..]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_version_reports_unsupported_not_checksum() {
        // A future-format snapshot: valid magic, version 255, arbitrary body
        // whose checksum this build cannot even locate. The old loader
        // verified the checksum first and reported a misleading corruption;
        // version must win.
        let mut future = Vec::new();
        future.extend_from_slice(b"CCDO");
        future.extend_from_slice(&255u16.to_le_bytes());
        future.extend_from_slice(&[0xAB; 32]);
        let err = DistOracle::load(&mut &future[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(255)));
        assert_eq!(err.to_string(), "unsupported snapshot version 255");
        // A version-3 header over an otherwise valid v1 body (checksum
        // recomputed, so only the version differs): same answer. Version 2
        // is a real format now, so 3 is the lowest unknown one.
        let m = sample_matrix(4);
        let o = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), StorageKind::Full);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 8);
        buf[4..6].copy_from_slice(&3u16.to_le_bytes());
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            DistOracle::load(&mut &buf[..]),
            Err(SnapshotError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn k_nearest_selection_matches_full_sort_with_ties() {
        // Regression for the select_nth fast path: a row full of equal
        // distances must cut the prefix by (distance, id) — the same answer
        // the old full sort produced — for every k including the tie run.
        let n = 40;
        let mut data = vec![INF; n * n];
        for v in 1..n {
            // Distances 5,5,5,...,5,3,3,2 in scrambled id order.
            let d = match v % 4 {
                0 => 2,
                1 => 3,
                _ => 5,
            };
            data[v] = d;
            data[v * n] = d;
        }
        for i in 0..n {
            data[i * n + i] = 0;
        }
        let o = DistOracle::from_storage(DistStorage::full(n, data), Guarantee::mult2(0.5));
        let full: Vec<(u32, Dist)> = {
            let row = o.dists_from(0);
            let mut all: Vec<(u32, Dist)> = row
                .iter()
                .enumerate()
                .filter(|&(v, &d)| v != 0 && d < INF)
                .map(|(v, &d)| (v as u32, d))
                .collect();
            all.sort_unstable_by_key(|&(v, d)| (d, v));
            all
        };
        for k in [0usize, 1, 9, 10, 11, 20, n - 1, n, 2 * n] {
            let got = o.k_nearest(0, k);
            assert_eq!(got, full[..k.min(full.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn with_layout_preserves_answers() {
        let m = sample_matrix(8);
        let o = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), StorageKind::SymmetricPacked);
        for kind in [
            StorageKind::Full,
            StorageKind::SymmetricPacked,
            StorageKind::RowSparse,
        ] {
            let converted = o.with_layout(kind);
            assert_eq!(converted.storage_kind(), kind);
            for u in 0..8 {
                for v in 0..8 {
                    assert_eq!(o.dist(u, v), converted.dist(u, v), "{kind:?} ({u},{v})");
                }
            }
        }
    }

    /// Forged header up to (but excluding) the guarantee table's end:
    /// magic, version, flags=0, `kind`, `n`, one mult2 guarantee.
    fn forged_header(kind: u8, n: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(b"CCDO");
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(0); // no tags
        payload.push(kind);
        payload.extend_from_slice(&n.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes()); // one guarantee
        payload.push(0);
        payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        payload.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
        payload
    }

    fn seal(mut payload: Vec<u8>) -> Vec<u8> {
        let checksum = fnv1a(&payload);
        payload.extend_from_slice(&checksum.to_le_bytes());
        payload
    }

    #[test]
    fn forged_header_sizes_are_rejected_not_allocated() {
        // Syntactically valid snapshots whose headers declare absurd sizes:
        // the FNV checksum is trivially forgeable, so load must bound every
        // allocation by the bytes actually present and never trust a
        // header-declared count.

        // Full layout, n = 2^31, entries = n².
        let mut p = forged_header(0, 1 << 31);
        p.extend_from_slice(&(1u64 << 62).to_le_bytes());
        assert!(matches!(
            DistOracle::load(&mut &seal(p)[..]),
            Err(SnapshotError::Corrupt(_))
        ));

        // Symmetric layout, n = u64::MAX: the n(n+1)/2 size formula must
        // not wrap around and accept entries = 0.
        let mut p = forged_header(1, u64::MAX);
        p.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            DistOracle::load(&mut &seal(p)[..]),
            Err(SnapshotError::Corrupt(_))
        ));

        // Row-sparse layout with zero sources: nothing stored would bound
        // n, so the O(n) source index must never be allocated.
        let mut p = forged_header(2, 1 << 40);
        p.extend_from_slice(&0u64.to_le_bytes()); // no sources
        p.extend_from_slice(&0u64.to_le_bytes()); // no entries
        assert!(matches!(
            DistOracle::load(&mut &seal(p)[..]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn with_layout_symmetrizes_an_asymmetric_full_table() {
        // Hand-built asymmetric square table: packing must keep the min of
        // both orientations, not silently drop the lower triangle.
        let g = Guarantee::mult2(0.5);
        let o = DistOracle::from_storage(DistStorage::full(2, vec![0, 9, 3, 0]), g);
        assert_eq!(o.dist(0, 1).unwrap().dist, 9);
        assert_eq!(o.dist(1, 0).unwrap().dist, 3);
        let sym = o.with_layout(StorageKind::SymmetricPacked);
        assert_eq!(sym.dist(0, 1).unwrap().dist, 3);
        assert_eq!(sym.dist(1, 0).unwrap().dist, 3);
    }

    #[test]
    fn duplicate_source_oracle_round_trips() {
        let g = Guarantee::mssp(0.25);
        let o = DistOracle::from_storage(
            DistStorage::row_sparse(2, vec![0, 0, 1], vec![0, 7, 0, 9, 5, 0]),
            g,
        );
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let back = DistOracle::load(&mut &buf[..]).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.dist(0, 1).unwrap().dist, 5, "first row wins, then min");
    }

    #[test]
    fn snapshot_v2_round_trips_all_layouts() {
        let m = sample_matrix(9);
        for kind in [
            StorageKind::Full,
            StorageKind::SymmetricPacked,
            StorageKind::RowSparse,
        ] {
            let o = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), kind);
            let mut buf = Vec::new();
            o.save_v2(&mut buf).unwrap();
            let back = DistOracle::load(&mut &buf[..]).unwrap();
            assert_eq!(o, back, "{kind:?}");
            if cfg!(target_endian = "little") {
                assert!(back.storage().is_shared(), "{kind:?}: entries are views");
            }
            let mut again = Vec::new();
            back.save_v2(&mut again).unwrap();
            assert_eq!(buf, again, "{kind:?}: v2 re-save must be byte-identical");
        }
    }

    #[test]
    fn snapshot_v1_to_v2_upgrade_preserves_everything() {
        // Multi-guarantee oracle (tagged entries) through v1 → load → v2 →
        // load: values, tags and guarantee tables must survive unchanged.
        let n = 6;
        let entries = n * (n + 1) / 2;
        let data: Vec<Dist> = (0..entries as Dist).map(|i| i % 11 + 1).collect();
        let tags: Vec<u8> = (0..entries).map(|i| (i % 2) as u8).collect();
        let o = DistOracle::from_tagged_packed(
            n,
            data,
            tags,
            vec![Guarantee::mult2(0.5), Guarantee::mssp(0.25)],
        );
        let mut v1 = Vec::new();
        o.save(&mut v1).unwrap();
        let loaded_v1 = DistOracle::load(&mut &v1[..]).unwrap();
        let mut v2 = Vec::new();
        loaded_v1.save_v2(&mut v2).unwrap();
        let loaded_v2 = DistOracle::load(&mut &v2[..]).unwrap();
        assert_eq!(o, loaded_v2);
        for u in 0..n {
            for v in 0..n {
                assert_eq!(o.dist(u, v), loaded_v2.dist(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn snapshot_v2_rejects_corruption_with_typed_errors() {
        let m = sample_matrix(5);
        let o = DistOracle::from_matrix(&m, Guarantee::mssp(0.1), StorageKind::SymmetricPacked);
        let mut buf = Vec::new();
        o.save_v2(&mut buf).unwrap();

        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            DistOracle::load(&mut &flipped[..]),
            Err(SnapshotError::Corrupt(_))
        ));
        for cut in [3, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                DistOracle::load(&mut &buf[..buf.len() - cut]).is_err(),
                "truncated by {cut}"
            );
        }
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            DistOracle::load(&mut &wrong_magic[..]),
            Err(SnapshotError::BadMagic(_))
        ));
    }

    #[test]
    fn bound_formulas() {
        assert_eq!(Guarantee::mult2(0.5).bound(10), 25.0);
        assert_eq!(Guarantee::mult3(0.5).bound(10), 35.0);
        assert_eq!(Guarantee::near_additive(0.25, 4.0).bound(8), 14.0);
        assert_eq!(Guarantee::mssp(0.5).bound(10), 15.0);
    }
}
