//! `(1+ε, β)`-approximate APSP (Thm 32, deterministic: Thm 51).
//!
//! The direct application of the emulator: build a `(1+ε, β)`-emulator of
//! `O(n log log n)` edges, let every vertex learn all of it (Lenzen routing,
//! `O(log log n)` rounds), and have each vertex answer distance queries by
//! local Dijkstra on the emulator. Total: `O(log²β/ε)` rounds.

use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{Emulator, EmulatorParams};
use cc_graphs::Graph;
use rand::Rng;

use crate::estimates::DistanceMatrix;
use crate::oracle::{DistOracle, Guarantee};
use crate::pipeline::{self, Mode, Substrates};
use cc_graphs::StorageKind;

/// Configuration of the near-additive APSP algorithm.
#[derive(Clone, Debug)]
pub struct AdditiveApspConfig {
    /// The emulator configuration.
    pub emulator: CliqueEmulatorConfig,
}

impl AdditiveApspConfig {
    /// Paper profile with explicit level count `r`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(n: usize, eps: f64, r: usize) -> Result<Self, cc_emulator::params::ParamError> {
        Ok(AdditiveApspConfig {
            emulator: CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r)?),
        })
    }

    /// Benchmark-scale profile: `r = max(2, ⌊log₂log₂ n⌋)` levels and
    /// tempered hopset constants.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn scaled(n: usize, eps: f64) -> Result<Self, cc_emulator::params::ParamError> {
        Ok(AdditiveApspConfig {
            emulator: CliqueEmulatorConfig::scaled(EmulatorParams::loglog(n, eps)?),
        })
    }

    /// The proven multiplicative part of the stretch.
    pub fn multiplicative_bound(&self) -> f64 {
        self.emulator
            .params
            .clique_multiplicative_bound(self.emulator.eps_prime)
    }

    /// The proven additive part `β`.
    pub fn additive_bound(&self) -> f64 {
        self.emulator
            .params
            .clique_additive_bound(self.emulator.eps_prime)
    }
}

/// Result of the near-additive APSP computation.
#[derive(Clone, Debug)]
pub struct AdditiveApsp {
    /// Estimates `δ` with `d_G ≤ δ ≤ (1+ε̂)d_G + β̂`.
    pub estimates: DistanceMatrix,
    /// The emulator the estimates came from.
    pub emulator: Emulator,
    /// The proven multiplicative bound `1+ε̂`.
    pub multiplicative_bound: f64,
    /// The proven additive bound `β̂`.
    pub additive_bound: f64,
    /// Per-pair path witnesses, recorded when the configuration set
    /// [`CliqueEmulatorConfig::record_paths`]. `Arc`-shared so memoized
    /// results clone cheaply.
    pub paths: Option<std::sync::Arc<cc_routes::PathStore>>,
}

impl AdditiveApsp {
    /// The provenance every estimate of this result is served under.
    pub fn guarantee(&self) -> Guarantee {
        Guarantee::near_additive(self.multiplicative_bound - 1.0, self.additive_bound)
    }

    /// Freezes the estimates into an immutable, `Arc`-shareable
    /// [`DistOracle`] (symmetric-packed layout).
    pub fn into_oracle(self) -> DistOracle {
        let guarantee = self.guarantee();
        DistOracle::from_matrix(&self.estimates, guarantee, StorageKind::SymmetricPacked)
    }
}

/// Randomized `(1+ε, β)`-APSP (Thm 32).
pub fn run(
    g: &Graph,
    cfg: &AdditiveApspConfig,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> AdditiveApsp {
    run_mode(g, cfg, Mode::Rng(rng), ledger, &mut Substrates::new())
}

/// Deterministic `(1+ε, β)`-APSP (Thm 51).
pub fn run_deterministic(
    g: &Graph,
    cfg: &AdditiveApspConfig,
    ledger: &mut RoundLedger,
) -> AdditiveApsp {
    run_mode(g, cfg, Mode::Det, ledger, &mut Substrates::new())
}

pub(crate) fn run_mode(
    g: &Graph,
    cfg: &AdditiveApspConfig,
    mut mode: Mode<'_>,
    ledger: &mut RoundLedger,
    substrates: &mut Substrates,
) -> AdditiveApsp {
    let mut phase = ledger.enter("apsp-additive");
    let mut delta = DistanceMatrix::new(g.n());
    let mut paths = cfg
        .emulator
        .record_paths
        .then(|| cc_routes::PathStore::new(g.n()));
    let emulator = pipeline::collect_emulator(
        g,
        &cfg.emulator,
        &mut mode,
        &mut delta,
        substrates,
        paths.as_mut(),
        &mut phase,
    )
    .clone();
    AdditiveApsp {
        estimates: delta,
        emulator,
        multiplicative_bound: cfg.multiplicative_bound(),
        additive_bound: cfg.additive_bound(),
        paths: paths.map(std::sync::Arc::new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators, stretch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn guarantee_holds_on_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (name, g) in [
            ("cycle", generators::cycle(64)),
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
        ] {
            let cfg = AdditiveApspConfig::new(g.n(), 0.25, 2).unwrap();
            let mut ledger = RoundLedger::new(g.n());
            let out = run(&g, &cfg, &mut rng, &mut ledger);
            let exact = bfs::apsp_exact(&g);
            let report = stretch::evaluate(
                &exact,
                out.estimates.as_fn(),
                out.multiplicative_bound - 1.0,
            );
            assert!(
                report.satisfies(out.multiplicative_bound - 1.0, out.additive_bound),
                "{name}: {report:?}"
            );
        }
    }

    #[test]
    fn deterministic_matches_guarantee_and_reproduces() {
        let g = generators::caveman(6, 6);
        let cfg = AdditiveApspConfig::new(g.n(), 0.25, 2).unwrap();
        let mut l1 = RoundLedger::new(g.n());
        let a = run_deterministic(&g, &cfg, &mut l1);
        let mut l2 = RoundLedger::new(g.n());
        let b = run_deterministic(&g, &cfg, &mut l2);
        assert_eq!(a.estimates, b.estimates);
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate(&exact, a.estimates.as_fn(), a.multiplicative_bound - 1.0);
        assert!(report.satisfies(a.multiplicative_bound - 1.0, a.additive_bound));
    }

    #[test]
    fn estimates_never_undercut() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::connected_gnp(60, 0.06, &mut rng);
        let cfg = AdditiveApspConfig::new(g.n(), 0.3, 2).unwrap();
        let mut ledger = RoundLedger::new(g.n());
        let out = run(&g, &cfg, &mut rng, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert!(out.estimates.get(u, v) >= exact[u][v]);
            }
        }
    }

    #[test]
    fn rounds_include_collection_cost() {
        let g = generators::grid(10, 10);
        let cfg = AdditiveApspConfig::new(g.n(), 0.25, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ledger = RoundLedger::new(g.n());
        let _ = run(&g, &cfg, &mut rng, &mut ledger);
        let phases = ledger.by_phase();
        assert!(phases.contains_key("apsp-additive"));
    }
}
