//! Crate-private plumbing shared by the application algorithms: one switch
//! between the randomized and deterministic tool variants, emulator
//! collection, and the short/long distance threshold.

use cc_clique::RoundLedger;
use cc_derand::hitting;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{deterministic, whp, Emulator};
use cc_graphs::{Dist, Graph};
use cc_toolkit::hopset::{self, BoundedHopset, HopsetParams};
use rand::RngCore;

use crate::estimates::DistanceMatrix;

/// Randomized-or-deterministic mode threaded through the pipelines.
pub(crate) enum Mode<'a> {
    /// Randomized variants (Lemma 8 hitting sets, Thm 12.1 hopsets, Thm 31
    /// emulator).
    Rng(&'a mut dyn RngCore),
    /// Deterministic variants (Lemma 9, Thm 12.2, Thm 50).
    Det,
}

/// Builds the emulator (w.h.p. variant when randomized, Thm 50 when
/// deterministic), lets every vertex learn it, and merges its all-pairs
/// distances plus the input adjacency into `delta`.
pub(crate) fn collect_emulator(
    g: &Graph,
    cfg: &CliqueEmulatorConfig,
    mode: &mut Mode<'_>,
    delta: &mut DistanceMatrix,
    ledger: &mut RoundLedger,
) -> Emulator {
    let emu = match mode {
        Mode::Rng(rng) => whp::build(g, cfg, rng, ledger).0,
        Mode::Det => deterministic::build(g, cfg, ledger),
    };
    ledger.charge_learn_all("collect emulator at all vertices", emu.m() as u64);
    for (u, v) in g.edges() {
        delta.improve(u, v, 1);
    }
    delta.merge_rows(&emu.apsp());
    emu
}

/// Builds a bounded hopset in the requested mode and profile.
pub(crate) fn build_hopset(
    g: &Graph,
    t: Dist,
    eps: f64,
    scaled: bool,
    mode: &mut Mode<'_>,
    ledger: &mut RoundLedger,
) -> BoundedHopset {
    let params = if scaled {
        HopsetParams::scaled(g.n(), t, eps)
    } else {
        HopsetParams::paper(g.n(), t, eps)
    };
    match mode {
        Mode::Rng(rng) => hopset::build_randomized(g, params, rng, ledger),
        Mode::Det => hopset::build_deterministic(g, params, ledger),
    }
}

/// Computes a hitting set in the requested mode.
pub(crate) fn hitting_set(
    universe: usize,
    k: usize,
    sets: &[Vec<usize>],
    mode: &mut Mode<'_>,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    if sets.is_empty() {
        return Vec::new();
    }
    let k = k.min(sets.iter().map(Vec::len).min().unwrap_or(k)).max(1);
    match mode {
        Mode::Rng(rng) => hitting::random_hitting_set(universe, k, sets, 2.5, rng, ledger),
        Mode::Det => hitting::deterministic_hitting_set(universe, k, sets, ledger),
    }
    .expect("sets validated by construction")
}

/// The short/long threshold `t = ⌈2β̂/ε⌉` of §4 (β̂ = the emulator's
/// effective additive bound), clamped to at least 4.
pub(crate) fn default_threshold(cfg: &CliqueEmulatorConfig, eps: f64) -> Dist {
    let beta_hat = cfg.params.clique_additive_bound(cfg.eps_prime);
    ((2.0 * beta_hat / eps).ceil() as Dist).max(4)
}
