//! Crate-private plumbing shared by the application algorithms: one switch
//! between the randomized and deterministic tool variants, the session-level
//! substrate cache, emulator collection, and the short/long distance
//! threshold.

use std::cell::RefCell;
use std::collections::BTreeMap;

use cc_clique::RoundLedger;
use cc_derand::hitting;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{deterministic, whp, Emulator};
use cc_graphs::{dijkstra, Dist, Graph, INF};
use cc_obs::StageTimes;
use cc_routes::{PathStore, RecId, RowStore};
use cc_toolkit::hopset::{self, BoundedHopset, HopsetParams};
use rand::RngCore;

use crate::error::CcError;
use crate::estimates::DistanceMatrix;

/// Randomized-or-deterministic mode threaded through the pipelines.
pub(crate) enum Mode<'a> {
    /// Randomized variants (Lemma 8 hitting sets, Thm 12.1 hopsets, Thm 31
    /// emulator).
    Rng(&'a mut dyn RngCore),
    /// Deterministic variants (Lemma 9, Thm 12.2, Thm 50).
    Det,
}

impl Mode<'_> {
    fn tag(&self) -> &'static str {
        match self {
            Mode::Rng(_) => "rng",
            Mode::Det => "det",
        }
    }
}

/// `f64` parameters as cache-key bits (exact — the configs store the same
/// float the caller passed).
fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Cache key identifying one emulator construction. `record_paths` is part
/// of the key: a path-carrying query must not be served a witness-less
/// cached emulator (the estimates are identical either way, but the routes
/// would be missing).
type EmulatorKey = (&'static str, usize, u64, usize, u64, usize, bool, bool);

fn emulator_key(cfg: &CliqueEmulatorConfig, mode: &Mode<'_>) -> EmulatorKey {
    (
        mode.tag(),
        cfg.params.n(),
        bits(cfg.params.eps()),
        cfg.params.r(),
        bits(cfg.eps_prime),
        cfg.k,
        cfg.scaled_hopset,
        cfg.record_paths,
    )
}

/// Cache key identifying one bounded-hopset construction: graph tag and
/// shape, threshold, accuracy, profile, mode, path recording.
type HopsetKey = (
    &'static str,
    &'static str,
    usize,
    usize,
    Dist,
    u64,
    bool,
    bool,
);

/// Cache key identifying one hitting-set selection: mode, call-site label,
/// universe, clamped `k`, and a fingerprint of the set contents (so a label
/// reused with different sets cannot serve a stale, non-hitting selection).
type HittingKey = (&'static str, &'static str, usize, usize, u64);

/// FNV-1a fingerprint of a set collection, order-sensitive.
fn sets_fingerprint(sets: &[Vec<usize>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(sets.len() as u64);
    for s in sets {
        mix(s.len() as u64);
        for &e in s {
            mix(e as u64);
        }
    }
    h
}

/// Session-scoped cache of the expensive substrates every pipeline stands
/// on: the near-additive emulator, bounded hopsets (keyed by graph, mode and
/// threshold) and hitting sets.
///
/// The one-shot entry points run with a fresh cache, so each free-function
/// call charges exactly what it always did. A [`crate::Solver`] keeps one
/// `Substrates` for its lifetime, which is what amortizes construction
/// across queries: a cache hit returns the stored object and charges **zero**
/// rounds, modelling that every node of the clique already holds the
/// substrate locally from the earlier query.
/// Keys are fully ordered and the maps are `BTreeMap`s, not `HashMap`s:
/// nothing here may iterate in an address-dependent order (the
/// `unordered-iter` rule in `cc-analyze` bans unordered containers in
/// result-affecting crates wholesale — see `DESIGN.md` §11.1).
#[derive(Debug, Default)]
pub(crate) struct Substrates {
    emulator: Option<(EmulatorKey, Emulator)>,
    hopsets: BTreeMap<HopsetKey, BoundedHopset>,
    hitting_sets: BTreeMap<HittingKey, Vec<usize>>,
    /// Gated wall-clock stage profiling. `RefCell` because the freeze path
    /// records through `&Solver`; the solver session is single-threaded, so
    /// the borrows are trivially disjoint. Disabled (the default), `start`
    /// never reads the clock — the pipelines cost nothing and timing can
    /// never feed back into results or charged rounds.
    pub(crate) stages: RefCell<StageTimes>,
}

impl Substrates {
    pub(crate) fn new() -> Self {
        Substrates::default()
    }

    /// The emulator for `cfg`, built (w.h.p. variant when randomized, Thm 50
    /// when deterministic) and distributed to every vertex on first use,
    /// reused afterwards.
    pub(crate) fn emulator_for(
        &mut self,
        g: &Graph,
        cfg: &CliqueEmulatorConfig,
        mode: &mut Mode<'_>,
        ledger: &mut RoundLedger,
    ) -> &Emulator {
        let key = emulator_key(cfg, mode);
        let stale = match &self.emulator {
            Some((k, _)) => *k != key,
            None => true,
        };
        if stale {
            let started = self.stages.borrow().start();
            let emu = match mode {
                Mode::Rng(rng) => whp::build(g, cfg, rng, ledger).0,
                Mode::Det => deterministic::build(g, cfg, ledger),
            };
            ledger.charge_learn_all("collect emulator at all vertices", emu.m() as u64);
            self.stages.borrow_mut().stop("emulator_build", started);
            self.emulator = Some((key, emu));
        }
        &self.emulator.as_ref().expect("just inserted").1
    }

    /// A `(β, ε, t)`-bounded hopset of `g`, built on first use per
    /// `(graph, threshold, accuracy, profile, mode)` key and reused
    /// afterwards. `graph_tag` distinguishes derived graphs (e.g. the
    /// low-degree subgraph) that share `n` with the input.
    ///
    /// Returns an owned clone so pipelines can interleave further cache
    /// lookups while holding the hopset.
    /// `threads` is purely wall-clock (the construction is bit-identical at
    /// any thread count), so it is deliberately **not** part of the cache
    /// key.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn hopset_for(
        &mut self,
        graph_tag: &'static str,
        g: &Graph,
        t: Dist,
        eps: f64,
        scaled: bool,
        threads: usize,
        record_paths: bool,
        mode: &mut Mode<'_>,
        ledger: &mut RoundLedger,
    ) -> BoundedHopset {
        let key = (
            mode.tag(),
            graph_tag,
            g.n(),
            g.m(),
            t,
            bits(eps),
            scaled,
            record_paths,
        );
        if !self.hopsets.contains_key(&key) {
            let started = self.stages.borrow().start();
            let params = if scaled {
                HopsetParams::scaled(g.n(), t, eps)
            } else {
                HopsetParams::paper(g.n(), t, eps)
            }
            .with_threads(threads)
            .with_paths(record_paths);
            let built = match mode {
                Mode::Rng(rng) => hopset::build_randomized(g, params, rng, ledger),
                Mode::Det => hopset::build_deterministic(g, params, ledger),
            };
            self.stages.borrow_mut().stop("hopset_build", started);
            self.hopsets.insert(key, built);
        }
        self.hopsets.get(&key).expect("just inserted").clone()
    }

    /// A hitting set over `sets`, computed on first use per
    /// `(label, universe, k, mode)` key and reused afterwards.
    ///
    /// The promised minimum size `k` is clamped to the smallest set so the
    /// paper-level parameter choice cannot over-promise; genuine instance
    /// violations (out-of-range elements) surface as [`CcError::Hitting`]
    /// instead of panicking.
    pub(crate) fn hitting_set_for(
        &mut self,
        label: &'static str,
        universe: usize,
        k: usize,
        sets: &[Vec<usize>],
        mode: &mut Mode<'_>,
        ledger: &mut RoundLedger,
    ) -> Result<Vec<usize>, CcError> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        let k = k.min(sets.iter().map(Vec::len).min().unwrap_or(k)).max(1);
        let key = (mode.tag(), label, universe, k, sets_fingerprint(sets));
        if let Some(cached) = self.hitting_sets.get(&key) {
            return Ok(cached.clone());
        }
        let started = self.stages.borrow().start();
        let selected = match mode {
            Mode::Rng(rng) => hitting::random_hitting_set(universe, k, sets, 2.5, rng, ledger),
            Mode::Det => hitting::deterministic_hitting_set(universe, k, sets, ledger),
        }?;
        self.stages.borrow_mut().stop("hitting_sets", started);
        self.hitting_sets.insert(key, selected.clone());
        Ok(selected)
    }
}

/// Obtains the emulator (cached or freshly built), lets every vertex learn
/// it, and merges its all-pairs distances plus the input adjacency into
/// `delta`. When `paths` is given, every improvement is shadowed by a
/// witness offer (the values written to `delta` are untouched either way).
pub(crate) fn collect_emulator<'s>(
    g: &Graph,
    cfg: &CliqueEmulatorConfig,
    mode: &mut Mode<'_>,
    delta: &mut DistanceMatrix,
    substrates: &'s mut Substrates,
    paths: Option<&mut PathStore>,
    ledger: &mut RoundLedger,
) -> &'s Emulator {
    let emu = substrates.emulator_for(g, cfg, mode, ledger);
    for (u, v) in g.edges() {
        delta.improve(u, v, 1);
    }
    match paths {
        None => delta.merge_rows(&emu.apsp()),
        Some(store) => {
            for (u, v) in g.edges() {
                store.offer_edge(u, v);
            }
            // The recording pass's Dijkstra trees carry the same distances
            // `emu.apsp()` would compute — merge from them instead of
            // running a second per-source sweep.
            let rows = record_emulator_pairs(g, emu, store);
            delta.merge_rows(&rows);
        }
    }
    emu
}

/// Shadows the emulator all-pairs merge with witnesses: per source, the
/// emulator Dijkstra tree's parent chains become records whose emulator-edge
/// hops resolve against the emulator's own routes (absorbed here). Returns
/// the per-source distance rows — the same table `emu.apsp()` computes — so
/// the caller merges values without a second Dijkstra sweep.
pub(crate) fn record_emulator_pairs(
    g: &Graph,
    emu: &Emulator,
    store: &mut PathStore,
) -> Vec<Vec<Dist>> {
    let routes = emu
        .routes
        .as_ref()
        .expect("path-recording pipelines build path-recording emulators");
    store.absorb_routes(routes);
    let n = g.n();
    let mut rows = Vec::with_capacity(n);
    for src in 0..n {
        let tree = dijkstra::sssp_tree(&emu.graph, src);
        let recs = emulator_tree_recs(g, store.routes_mut(), &tree);
        for (v, rec) in recs.into_iter().enumerate() {
            if let Some(rec) = rec {
                store.offer_rec(src, v, tree.dist(v), rec);
            }
        }
        rows.push(tree.dists().to_vec());
    }
    rows
}

/// The MSSP counterpart of [`record_emulator_pairs`]: shadows the per-source
/// emulator Dijkstras into a [`RowStore`] and returns the distance rows the
/// estimates start from (same values as `emu.sssp` per source).
pub(crate) fn record_emulator_rows(
    g: &Graph,
    emu: &Emulator,
    sources: &[usize],
    rows: &mut RowStore,
) -> Vec<Vec<Dist>> {
    let routes = emu
        .routes
        .as_ref()
        .expect("path-recording pipelines build path-recording emulators");
    rows.absorb_routes(routes);
    let mut out = Vec::with_capacity(sources.len());
    for (i, &src) in sources.iter().enumerate() {
        let tree = dijkstra::sssp_tree(&emu.graph, src);
        let recs = emulator_tree_recs(g, rows.routes_mut(), &tree);
        for (v, rec) in recs.into_iter().enumerate() {
            if let Some(rec) = rec {
                rows.offer_rec(i, v, tree.dist(v), rec);
            }
        }
        out.push(tree.dists().to_vec());
    }
    out
}

/// Interns, for every vertex reachable in the emulator tree, the `G`-walk
/// realizing its tree path (emulator-edge hops resolved through the
/// unroller's absorbed routes; direct `G` edges preferred). Vertices are
/// processed in `(distance, id)` order so every parent's record exists
/// before its children extend it. Shared by the all-pairs and MSSP
/// recorders.
fn emulator_tree_recs(
    g: &Graph,
    routes: &mut cc_routes::Unroller,
    tree: &dijkstra::ShortestPathTree,
) -> Vec<Option<RecId>> {
    let n = tree.dists().len();
    let src = tree.src();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (tree.dist(v as usize), v));
    let mut recs: Vec<Option<RecId>> = vec![None; n];
    for &v32 in &order {
        let v = v32 as usize;
        if v == src || tree.dist(v) >= INF {
            continue;
        }
        let p = tree.parent(v).expect("finite non-root has a parent") as usize;
        let hop = if g.has_edge(p, v) {
            routes.arena_mut().edge(p as u32, v32)
        } else {
            routes
                .oriented(p, v)
                .expect("emulator edge has provenance")
                .1
        };
        let rec = match recs[p] {
            Some(prefix) => routes.arena_mut().cat(prefix, hop),
            None => {
                debug_assert_eq!(p, src, "parents settle before children");
                hop
            }
        };
        recs[v] = Some(rec);
    }
    recs
}

/// The short/long threshold `t = ⌈2β̂/ε⌉` of §4 (β̂ = the emulator's
/// effective additive bound), clamped to at least 4.
pub(crate) fn default_threshold(cfg: &CliqueEmulatorConfig, eps: f64) -> Dist {
    let beta_hat = cfg.params.clique_additive_bound(cfg.eps_prime);
    ((2.0 * beta_hat / eps).ceil() as Dist).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_emulator::EmulatorParams;
    use cc_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn count_label(ledger: &RoundLedger, needle: &str) -> usize {
        ledger
            .entries()
            .iter()
            .filter(|e| e.label.contains(needle))
            .count()
    }

    #[test]
    fn emulator_is_built_once_per_key() {
        let g = generators::caveman(6, 6);
        let cfg = CliqueEmulatorConfig::scaled(EmulatorParams::loglog(g.n(), 0.5).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut mode = Mode::Rng(&mut rng);
        let mut subs = Substrates::new();
        let mut ledger = RoundLedger::new(g.n());
        let m1 = subs.emulator_for(&g, &cfg, &mut mode, &mut ledger).m();
        let after_first = ledger.total_rounds();
        let m2 = subs.emulator_for(&g, &cfg, &mut mode, &mut ledger).m();
        assert_eq!(m1, m2, "cache must return the same emulator");
        assert_eq!(
            ledger.total_rounds(),
            after_first,
            "second lookup must charge zero rounds"
        );
        assert_eq!(count_label(&ledger, "collect emulator"), 1);
    }

    #[test]
    fn mode_change_invalidates_the_emulator_cache() {
        let g = generators::grid(5, 5);
        let cfg = CliqueEmulatorConfig::scaled(EmulatorParams::loglog(g.n(), 0.5).unwrap());
        let mut subs = Substrates::new();
        let mut ledger = RoundLedger::new(g.n());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut mode = Mode::Rng(&mut rng);
        subs.emulator_for(&g, &cfg, &mut mode, &mut ledger);
        let mut det = Mode::Det;
        subs.emulator_for(&g, &cfg, &mut det, &mut ledger);
        assert_eq!(
            count_label(&ledger, "collect emulator"),
            2,
            "deterministic rebuild must not reuse the randomized emulator"
        );
    }

    #[test]
    fn hopsets_cache_per_threshold() {
        let g = generators::cycle(40);
        let mut subs = Substrates::new();
        let mut ledger = RoundLedger::new(g.n());
        let mut det = Mode::Det;
        subs.hopset_for("g", &g, 8, 0.5, true, 1, false, &mut det, &mut ledger);
        let after_first = ledger.total_rounds();
        subs.hopset_for("g", &g, 8, 0.5, true, 1, false, &mut det, &mut ledger);
        assert_eq!(ledger.total_rounds(), after_first, "hit charges nothing");
        subs.hopset_for("g", &g, 16, 0.5, true, 1, false, &mut det, &mut ledger);
        assert!(
            ledger.total_rounds() > after_first,
            "different threshold is a different substrate"
        );
    }

    /// Two independent sessions over the same inputs must produce
    /// bit-identical substrates — the cache's key/value plumbing may not
    /// introduce any iteration-order dependence (this pinned BTreeMap
    /// conversion is what the `unordered-iter` rule enforces statically).
    #[test]
    fn substrate_results_are_stable_across_runs() {
        let g = generators::cycle(40);
        let sets: Vec<Vec<usize>> = (0..6).map(|i| vec![i, i + 7, i + 19]).collect();
        let run = || {
            let mut subs = Substrates::new();
            let mut ledger = RoundLedger::new(g.n());
            let mut det = Mode::Det;
            let hopset = subs.hopset_for("g", &g, 8, 0.5, true, 1, false, &mut det, &mut ledger);
            // A second, different-threshold entry so the map holds several
            // keys before the first one is re-read.
            subs.hopset_for("g", &g, 16, 0.5, true, 1, false, &mut det, &mut ledger);
            let again = subs.hopset_for("g", &g, 8, 0.5, true, 1, false, &mut det, &mut ledger);
            let hit = subs
                .hitting_set_for("t", g.n(), 2, &sets, &mut det, &mut ledger)
                .unwrap();
            (hopset.edges, again.edges, hit)
        };
        let (a1, a2, ah) = run();
        let (b1, b2, bh) = run();
        assert_eq!(a1, a2, "cache hit must return the identical hopset");
        assert_eq!(a1, b1, "hopsets must be bit-identical across runs");
        assert_eq!(a2, b2);
        assert_eq!(ah, bh, "hitting sets must be bit-identical across runs");
    }

    #[test]
    fn hitting_sets_cache_and_validate() {
        let mut subs = Substrates::new();
        let mut ledger = RoundLedger::new(16);
        let mut det = Mode::Det;
        let sets: Vec<Vec<usize>> = (0..4).map(|i| vec![i, i + 1, i + 2]).collect();
        let a = subs
            .hitting_set_for("t", 16, 2, &sets, &mut det, &mut ledger)
            .unwrap();
        let after_first = ledger.total_rounds();
        let b = subs
            .hitting_set_for("t", 16, 2, &sets, &mut det, &mut ledger)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(ledger.total_rounds(), after_first);

        // Same label but different set contents must not serve the stale
        // selection: the fingerprint forces a rebuild that hits the new sets.
        let other_sets: Vec<Vec<usize>> = (8..12).map(|i| vec![i, i + 1, i + 2]).collect();
        let c = subs
            .hitting_set_for("t", 16, 2, &other_sets, &mut det, &mut ledger)
            .unwrap();
        assert!(cc_derand::hitting::hits_all(&c, &other_sets));

        let bad = vec![vec![99usize]];
        let err = subs
            .hitting_set_for("bad", 16, 1, &bad, &mut det, &mut ledger)
            .unwrap_err();
        assert!(matches!(err, CcError::Hitting(_)));
    }
}
