//! A unified entry point over the paper's algorithm portfolio.
//!
//! Downstream users typically want "approximate distances, this accuracy,
//! deterministic or not" without wiring emulator parameters, hopset profiles
//! and hitting sets themselves. [`solve`] picks defaults (the benchmark-scale
//! profiles of DESIGN.md §5) and returns the estimates together with the
//! simulated round ledger.

use cc_clique::RoundLedger;
use cc_emulator::params::ParamError;
use cc_graphs::{Dist, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::apsp2::{self, Apsp2Config};
use crate::apsp_additive::{self, AdditiveApspConfig};
use crate::estimates::DistanceMatrix;
use crate::mssp::{self, MsspConfig, MsspError};

/// Which guarantee to compute.
#[derive(Clone, Debug, PartialEq)]
pub enum Problem {
    /// `(1+ε, β)`-approximate all-pairs shortest paths (Thm 5).
    ApspNearAdditive {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
    },
    /// `(2+ε)`-approximate all-pairs shortest paths (Thm 4).
    ApspTwoPlusEps {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
    },
    /// `(1+ε)`-approximate multi-source shortest paths (Thm 3).
    Mssp {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
        /// The sources (at most `O(√n)`).
        sources: Vec<usize>,
    },
}

/// Randomized (seeded) or deterministic execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Execution {
    /// Randomized with the given seed (Thms 3–5).
    Seeded(u64),
    /// Deterministic (Thms 51–53): bit-for-bit reproducible.
    Deterministic,
}

/// The solver output: estimates plus the simulated cost.
#[derive(Clone, Debug)]
pub enum Solution {
    /// All-pairs estimates.
    Apsp {
        /// Symmetric estimate matrix (`d ≤ δ` always).
        estimates: DistanceMatrix,
        /// The guarantee actually proven for the run: `(mult, add)` such
        /// that `δ(u,v) ≤ mult·d(u,v) + add` (for the `(2+ε)` pipeline the
        /// additive part is 0 for pairs within its threshold).
        guarantee: (f64, f64),
    },
    /// Per-source rows.
    Mssp {
        /// The sources, in input order.
        sources: Vec<usize>,
        /// `estimates[i][v]` approximates `d(sources[i], v)`.
        estimates: Vec<Vec<Dist>>,
        /// Short-range multiplicative guarantee (`1+ε`).
        guarantee: f64,
    },
}

/// Errors of the facade.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Invalid accuracy or graph size.
    Params(ParamError),
    /// Invalid source specification.
    Mssp(MsspError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Params(e) => write!(f, "invalid parameters: {e}"),
            SolveError::Mssp(e) => write!(f, "invalid MSSP request: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ParamError> for SolveError {
    fn from(e: ParamError) -> Self {
        SolveError::Params(e)
    }
}

impl From<MsspError> for SolveError {
    fn from(e: MsspError) -> Self {
        SolveError::Mssp(e)
    }
}

/// Solves `problem` on `g`, charging simulated rounds to `ledger`.
///
/// Uses the benchmark-scale parameter profiles (same exponents as the paper,
/// tempered constants — DESIGN.md §5); for explicit control use the
/// per-algorithm modules directly.
///
/// # Errors
///
/// Returns [`SolveError`] for invalid accuracies, graphs with fewer than two
/// vertices, or invalid source sets.
///
/// # Example
///
/// ```
/// use cc_core::facade::{solve, Execution, Problem, Solution};
/// use cc_clique::RoundLedger;
/// use cc_graphs::generators;
///
/// let g = generators::caveman(6, 6);
/// let mut ledger = RoundLedger::new(g.n());
/// let solution = solve(
///     &g,
///     Problem::ApspTwoPlusEps { eps: 0.5 },
///     Execution::Seeded(7),
///     &mut ledger,
/// )?;
/// if let Solution::Apsp { estimates, .. } = solution {
///     assert!(estimates.get(0, 1) >= 1);
/// }
/// # Ok::<(), cc_core::facade::SolveError>(())
/// ```
pub fn solve(
    g: &Graph,
    problem: Problem,
    execution: Execution,
    ledger: &mut RoundLedger,
) -> Result<Solution, SolveError> {
    match problem {
        Problem::ApspNearAdditive { eps } => {
            let cfg = AdditiveApspConfig::scaled(g.n(), eps)?;
            let out = match execution {
                Execution::Seeded(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    apsp_additive::run(g, &cfg, &mut rng, ledger)
                }
                Execution::Deterministic => apsp_additive::run_deterministic(g, &cfg, ledger),
            };
            Ok(Solution::Apsp {
                estimates: out.estimates,
                guarantee: (out.multiplicative_bound, out.additive_bound),
            })
        }
        Problem::ApspTwoPlusEps { eps } => {
            let cfg = Apsp2Config::scaled(g.n(), eps)?;
            let out = match execution {
                Execution::Seeded(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    apsp2::run(g, &cfg, &mut rng, ledger)
                }
                Execution::Deterministic => apsp2::run_deterministic(g, &cfg, ledger),
            };
            Ok(Solution::Apsp {
                estimates: out.estimates,
                guarantee: (out.short_range_guarantee, 0.0),
            })
        }
        Problem::Mssp { eps, sources } => {
            let cfg = MsspConfig::scaled(g.n(), eps)?;
            let out = match execution {
                Execution::Seeded(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    mssp::run(g, &sources, &cfg, &mut rng, ledger)?
                }
                Execution::Deterministic => mssp::run_deterministic(g, &sources, &cfg, ledger)?,
            };
            Ok(Solution::Mssp {
                sources: out.sources,
                estimates: out.estimates,
                guarantee: 1.0 + eps,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn apsp_two_plus_eps_via_facade() {
        let g = generators::caveman(6, 6);
        let mut ledger = RoundLedger::new(g.n());
        let sol = solve(
            &g,
            Problem::ApspTwoPlusEps { eps: 0.5 },
            Execution::Seeded(3),
            &mut ledger,
        )
        .unwrap();
        let Solution::Apsp { estimates, guarantee } = sol else {
            panic!("wrong variant");
        };
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u != v {
                    assert!(estimates.get(u, v) >= exact[u][v]);
                    assert!((estimates.get(u, v) as f64) <= guarantee.0 * exact[u][v] as f64);
                }
            }
        }
        assert!(ledger.total_rounds() > 0);
    }

    #[test]
    fn near_additive_via_facade_deterministic_is_reproducible() {
        let g = generators::grid(6, 6);
        let run = || {
            let mut ledger = RoundLedger::new(g.n());
            solve(
                &g,
                Problem::ApspNearAdditive { eps: 0.25 },
                Execution::Deterministic,
                &mut ledger,
            )
            .unwrap()
        };
        let (Solution::Apsp { estimates: a, .. }, Solution::Apsp { estimates: b, .. }) =
            (run(), run())
        else {
            panic!("wrong variant");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mssp_via_facade() {
        let g = generators::cycle(36);
        let mut ledger = RoundLedger::new(36);
        let sol = solve(
            &g,
            Problem::Mssp {
                eps: 0.5,
                sources: vec![0, 9, 18],
            },
            Execution::Seeded(2),
            &mut ledger,
        )
        .unwrap();
        let Solution::Mssp { sources, estimates, .. } = sol else {
            panic!("wrong variant");
        };
        assert_eq!(sources, vec![0, 9, 18]);
        assert_eq!(estimates.len(), 3);
        assert_eq!(estimates[0][0], 0);
    }

    #[test]
    fn facade_propagates_errors() {
        let g = generators::cycle(16);
        let mut ledger = RoundLedger::new(16);
        let err = solve(
            &g,
            Problem::ApspTwoPlusEps { eps: 2.0 },
            Execution::Seeded(0),
            &mut ledger,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::Params(_)));
        let err = solve(
            &g,
            Problem::Mssp {
                eps: 0.5,
                sources: vec![],
            },
            Execution::Deterministic,
            &mut ledger,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::Mssp(MsspError::NoSources)));
    }
}
