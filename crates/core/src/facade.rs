//! Deprecated one-shot entry point, kept as a thin shim over the
//! [`Solver`](crate::Solver) session API.
//!
//! [`solve`] rebuilds every substrate on each call; multi-query workloads
//! should construct a [`crate::SolverBuilder`] instead and let the session
//! amortize the emulator and hopsets across queries.

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph};

use crate::error::CcError;
use crate::estimates::DistanceMatrix;
pub use crate::solver::Execution;
use crate::solver::SolverBuilder;

/// Which guarantee to compute.
#[derive(Clone, Debug, PartialEq)]
pub enum Problem {
    /// `(1+ε, β)`-approximate all-pairs shortest paths (Thm 5).
    ApspNearAdditive {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
    },
    /// `(2+ε)`-approximate all-pairs shortest paths (Thm 4).
    ApspTwoPlusEps {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
    },
    /// `(1+ε)`-approximate multi-source shortest paths (Thm 3).
    Mssp {
        /// Accuracy `ε ∈ (0,1)`.
        eps: f64,
        /// The sources (at most `O(√n)`).
        sources: Vec<usize>,
    },
}

/// The solver output: estimates plus the simulated cost.
#[derive(Clone, Debug)]
pub enum Solution {
    /// All-pairs estimates.
    Apsp {
        /// Symmetric estimate matrix (`d ≤ δ` always).
        estimates: DistanceMatrix,
        /// The guarantee actually proven for the run: `(mult, add)` such
        /// that `δ(u,v) ≤ mult·d(u,v) + add` (for the `(2+ε)` pipeline the
        /// additive part is 0 for pairs within its threshold).
        guarantee: (f64, f64),
    },
    /// Per-source rows.
    Mssp {
        /// The sources, in input order.
        sources: Vec<usize>,
        /// `estimates[i][v]` approximates `d(sources[i], v)`.
        estimates: Vec<Vec<Dist>>,
        /// Short-range multiplicative guarantee (`1+ε`).
        guarantee: f64,
    },
}

/// Former facade error type, now the unified [`CcError`].
#[deprecated(since = "0.2.0", note = "use cc_core::CcError")]
pub type SolveError = CcError;

/// Solves `problem` on `g`, charging simulated rounds to `ledger`.
///
/// Deprecated: this rebuilds the emulator and hopsets from scratch on every
/// call, and (because the session owns its graph) clones `g` each time.
/// Construct a [`crate::SolverBuilder`] once and query the returned
/// [`crate::Solver`] instead; this shim simply does that internally and
/// forwards the session's ledger entries to `ledger`.
///
/// # Errors
///
/// Returns [`CcError`] for invalid accuracies, graphs with fewer than two
/// vertices, or invalid source sets.
///
/// # Example
///
/// ```
/// # #![allow(deprecated)]
/// use cc_core::facade::{solve, Execution, Problem, Solution};
/// use cc_clique::RoundLedger;
/// use cc_graphs::generators;
///
/// let g = generators::caveman(6, 6);
/// let mut ledger = RoundLedger::new(g.n());
/// let solution = solve(
///     &g,
///     Problem::ApspTwoPlusEps { eps: 0.5 },
///     Execution::Seeded(7),
///     &mut ledger,
/// )?;
/// if let Solution::Apsp { estimates, .. } = solution {
///     assert!(estimates.get(0, 1) >= 1);
/// }
/// # Ok::<(), cc_core::CcError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use cc_core::SolverBuilder to amortize substrates across queries"
)]
pub fn solve(
    g: &Graph,
    problem: Problem,
    execution: Execution,
    ledger: &mut RoundLedger,
) -> Result<Solution, CcError> {
    let eps = match &problem {
        Problem::ApspNearAdditive { eps }
        | Problem::ApspTwoPlusEps { eps }
        | Problem::Mssp { eps, .. } => *eps,
    };
    let mut solver = SolverBuilder::new(g.clone())
        .eps(eps)
        .execution(execution)
        .build()?;
    let solution = match problem {
        Problem::ApspNearAdditive { .. } => {
            let out = solver.apsp_near_additive()?;
            Solution::Apsp {
                estimates: out.estimates,
                guarantee: (out.multiplicative_bound, out.additive_bound),
            }
        }
        Problem::ApspTwoPlusEps { .. } => {
            let out = solver.apsp_2eps()?;
            Solution::Apsp {
                estimates: out.estimates,
                guarantee: (out.short_range_guarantee, 0.0),
            }
        }
        Problem::Mssp { sources, .. } => {
            let out = solver.mssp(&sources)?;
            Solution::Mssp {
                sources: out.sources,
                estimates: out.estimates,
                guarantee: 1.0 + eps,
            }
        }
    };
    ledger.absorb(solver.ledger());
    Ok(solution)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::mssp::MsspError;
    use cc_graphs::{bfs, generators};

    #[test]
    fn apsp_two_plus_eps_via_facade() {
        let g = generators::caveman(6, 6);
        let mut ledger = RoundLedger::new(g.n());
        let sol = solve(
            &g,
            Problem::ApspTwoPlusEps { eps: 0.5 },
            Execution::Seeded(3),
            &mut ledger,
        )
        .unwrap();
        let Solution::Apsp {
            estimates,
            guarantee,
        } = sol
        else {
            panic!("wrong variant");
        };
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u != v {
                    assert!(estimates.get(u, v) >= exact[u][v]);
                    assert!((estimates.get(u, v) as f64) <= guarantee.0 * exact[u][v] as f64);
                }
            }
        }
        assert!(ledger.total_rounds() > 0);
    }

    #[test]
    fn near_additive_via_facade_deterministic_is_reproducible() {
        let g = generators::grid(6, 6);
        let run = || {
            let mut ledger = RoundLedger::new(g.n());
            solve(
                &g,
                Problem::ApspNearAdditive { eps: 0.25 },
                Execution::Deterministic,
                &mut ledger,
            )
            .unwrap()
        };
        let (Solution::Apsp { estimates: a, .. }, Solution::Apsp { estimates: b, .. }) =
            (run(), run())
        else {
            panic!("wrong variant");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mssp_via_facade() {
        let g = generators::cycle(36);
        let mut ledger = RoundLedger::new(36);
        let sol = solve(
            &g,
            Problem::Mssp {
                eps: 0.5,
                sources: vec![0, 9, 18],
            },
            Execution::Seeded(2),
            &mut ledger,
        )
        .unwrap();
        let Solution::Mssp {
            sources, estimates, ..
        } = sol
        else {
            panic!("wrong variant");
        };
        assert_eq!(sources, vec![0, 9, 18]);
        assert_eq!(estimates.len(), 3);
        assert_eq!(estimates[0][0], 0);
    }

    #[test]
    fn facade_propagates_errors() {
        let g = generators::cycle(16);
        let mut ledger = RoundLedger::new(16);
        let err = solve(
            &g,
            Problem::ApspTwoPlusEps { eps: 2.0 },
            Execution::Seeded(0),
            &mut ledger,
        )
        .unwrap_err();
        assert!(matches!(err, CcError::Params(_)));
        let err = solve(
            &g,
            Problem::Mssp {
                eps: 0.5,
                sources: vec![],
            },
            Execution::Deterministic,
            &mut ledger,
        )
        .unwrap_err();
        assert!(matches!(err, CcError::Mssp(MsspError::NoSources)));
    }

    #[test]
    fn facade_ledger_matches_session_charges() {
        let g = generators::grid(5, 5);
        let mut ledger = RoundLedger::new(g.n());
        let _ = solve(
            &g,
            Problem::ApspNearAdditive { eps: 0.25 },
            Execution::Deterministic,
            &mut ledger,
        )
        .unwrap();
        assert!(ledger.by_phase().contains_key("apsp-additive"));
    }
}
