//! `(1+ε)`-approximate multi-source shortest paths from `O(√n)` sources
//! (Thm 33, deterministic: Thm 52).
//!
//! For far pairs the `(1+ε/2, β)`-emulator is already a
//! `(1+ε)`-approximation; for pairs within `t = 2β/ε` a bounded
//! `(h, ε, t)`-hopset plus one `(S, h)`-source detection recovers
//! `(1+ε)`-approximate distances. Taking the minimum of the two estimates
//! covers every pair. Total: `O(log²β/ε)` rounds.

use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::EmulatorParams;
use cc_graphs::{Dist, DistStorage, Graph, INF};
use cc_toolkit::source_detection::SourceDetection;
use rand::Rng;

use crate::error::CcError;
use crate::oracle::{DistOracle, Guarantee};
use crate::pipeline::{self, Mode, Substrates};

/// Configuration of the MSSP algorithm.
#[derive(Clone, Debug)]
pub struct MsspConfig {
    /// Short-range accuracy `ε` (the hopset/source-detection stretch).
    pub eps: f64,
    /// The emulator configuration for the long range.
    pub emulator: CliqueEmulatorConfig,
    /// Override of the short/long threshold `t` (default `⌈2β̂/ε⌉`).
    pub t_override: Option<Dist>,
    /// Maximum sources as a multiple of `√n` (paper: `O(√n)`; default 4).
    pub max_sources_factor: f64,
}

impl MsspConfig {
    /// Paper profile with explicit level count `r`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(n: usize, eps: f64, r: usize) -> Result<Self, cc_emulator::params::ParamError> {
        Ok(MsspConfig {
            eps,
            emulator: CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r)?),
            t_override: None,
            max_sources_factor: 4.0,
        })
    }

    /// Benchmark-scale profile (`r = ⌊log₂log₂ n⌋`, tempered hopset
    /// constants).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn scaled(n: usize, eps: f64) -> Result<Self, cc_emulator::params::ParamError> {
        Ok(MsspConfig {
            eps,
            emulator: CliqueEmulatorConfig::scaled(EmulatorParams::loglog(n, eps)?),
            t_override: None,
            max_sources_factor: 4.0,
        })
    }

    /// The short/long threshold `t`.
    pub fn threshold(&self) -> Dist {
        self.t_override
            .unwrap_or_else(|| pipeline::default_threshold(&self.emulator, self.eps))
    }

    /// Maximum admissible number of sources.
    pub fn max_sources(&self, n: usize) -> usize {
        ((self.max_sources_factor * (n as f64).sqrt()).ceil() as usize).max(1)
    }

    /// The proven multiplicative guarantee: `1+ε` for short pairs, and the
    /// emulator's long-range stretch `M + ε/2` beyond `t` (with the default
    /// threshold). Measured stretch is reported by experiment T1.
    pub fn guarantee(&self) -> f64 {
        let m = self
            .emulator
            .params
            .clique_multiplicative_bound(self.emulator.eps_prime);
        (1.0 + self.eps).max(m + self.eps / 2.0)
    }
}

/// Errors of the MSSP entry points.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MsspError {
    /// More sources than the `O(√n)` regime admits (the sparse matrix
    /// multiplication bottleneck — §1.1 of the paper).
    TooManySources {
        /// Sources given.
        given: usize,
        /// Maximum admissible.
        max: usize,
    },
    /// A source vertex is out of range.
    SourceOutOfRange {
        /// The offending vertex.
        source: usize,
        /// Graph order.
        n: usize,
    },
    /// No sources given.
    NoSources,
}

impl std::fmt::Display for MsspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsspError::TooManySources { given, max } => write!(
                f,
                "{given} sources exceed the O(√n) limit of {max} (sparse matrix multiplication bound)"
            ),
            MsspError::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for n = {n}")
            }
            MsspError::NoSources => write!(f, "at least one source required"),
        }
    }
}

impl std::error::Error for MsspError {}

/// Result of an MSSP computation.
#[derive(Clone, Debug)]
pub struct Mssp {
    /// The sources, in input order.
    pub sources: Vec<usize>,
    /// `estimates[i][v]` = estimate of `d(sources[i], v)`.
    pub estimates: Vec<Vec<Dist>>,
    /// The threshold `t` used.
    pub t: Dist,
    /// The proven multiplicative guarantee.
    pub guarantee: f64,
    /// Per-row path witnesses, recorded when the configuration set
    /// `record_paths`. `Arc`-shared so memoized results clone cheaply.
    pub paths: Option<std::sync::Arc<cc_routes::RowStore>>,
}

impl Mssp {
    /// Estimate for `(sources[i], v)`.
    pub fn dist(&self, i: usize, v: usize) -> Dist {
        self.estimates[i][v]
    }

    /// The provenance every estimate of this result is served under.
    pub fn guarantee_tag(&self) -> Guarantee {
        Guarantee::mssp(self.guarantee - 1.0)
    }

    /// Freezes the source rows into an immutable, `Arc`-shareable
    /// [`DistOracle`] in the row-sparse layout (`|S| × n` entries — the
    /// natural shape of an MSSP result). Point queries answer both
    /// orientations of a source pair; rows of non-sources are served from
    /// the source columns.
    pub fn into_oracle(self) -> DistOracle {
        let guarantee = self.guarantee_tag();
        let n = self.estimates.first().map_or(0, Vec::len);
        let sources: Vec<u32> = self.sources.iter().map(|&s| s as u32).collect();
        let mut data = Vec::with_capacity(sources.len() * n);
        for row in &self.estimates {
            data.extend_from_slice(row);
        }
        DistOracle::from_storage(DistStorage::row_sparse(n, sources, data), guarantee)
    }
}

/// Randomized `(1+ε)`-MSSP (Thm 33).
///
/// # Errors
///
/// Returns [`CcError::Mssp`] if sources are invalid or exceed the `O(√n)`
/// limit.
pub fn run(
    g: &Graph,
    sources: &[usize],
    cfg: &MsspConfig,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> Result<Mssp, CcError> {
    run_mode(
        g,
        sources,
        cfg,
        Mode::Rng(rng),
        ledger,
        &mut Substrates::new(),
    )
}

/// Deterministic `(1+ε)`-MSSP (Thm 52).
///
/// # Errors
///
/// Returns [`CcError::Mssp`] if sources are invalid or exceed the `O(√n)`
/// limit.
pub fn run_deterministic(
    g: &Graph,
    sources: &[usize],
    cfg: &MsspConfig,
    ledger: &mut RoundLedger,
) -> Result<Mssp, CcError> {
    run_mode(g, sources, cfg, Mode::Det, ledger, &mut Substrates::new())
}

pub(crate) fn run_mode(
    g: &Graph,
    sources: &[usize],
    cfg: &MsspConfig,
    mut mode: Mode<'_>,
    ledger: &mut RoundLedger,
    substrates: &mut Substrates,
) -> Result<Mssp, CcError> {
    if sources.is_empty() {
        return Err(MsspError::NoSources.into());
    }
    let max = cfg.max_sources(g.n());
    if sources.len() > max {
        return Err(MsspError::TooManySources {
            given: sources.len(),
            max,
        }
        .into());
    }
    if let Some(&s) = sources.iter().find(|&&s| s >= g.n()) {
        return Err(MsspError::SourceOutOfRange {
            source: s,
            n: g.n(),
        }
        .into());
    }
    let mut phase = ledger.enter("mssp");
    let t = cfg.threshold();
    // Witness shadowing: every estimate update below is mirrored by an offer
    // with the same improvement rule, so estimates and rounds are identical
    // with recording on or off.
    let mut paths = cfg
        .emulator
        .record_paths
        .then(|| cc_routes::RowStore::new(g.n(), sources));

    // Long range: the emulator, learned by everyone (cached across queries
    // by the session's substrate store); each vertex runs local Dijkstra
    // from the sources.
    let mut estimates: Vec<Vec<Dist>> = {
        let emu = substrates.emulator_for(g, &cfg.emulator, &mut mode, &mut phase);
        match paths.as_mut() {
            None => sources.iter().map(|&s| emu.sssp(s)).collect(),
            // The recording pass's Dijkstra trees carry the same distances
            // `emu.sssp` computes — start the estimates from them instead of
            // running a second per-source sweep.
            Some(store) => pipeline::record_emulator_rows(g, emu, sources, store),
        }
    };

    // Short range: bounded hopset + source detection with h = β hops.
    let hs = substrates.hopset_for(
        "input",
        g,
        t,
        cfg.eps,
        cfg.emulator.scaled_hopset,
        cfg.emulator.threads,
        cfg.emulator.record_paths,
        &mut mode,
        &mut phase,
    );
    let union = hs.union_with(g);
    let sd = match &paths {
        Some(_) => SourceDetection::run_with_parents(&union, sources, hs.beta, &mut phase),
        None => SourceDetection::run(&union, sources, hs.beta, &mut phase),
    };
    if let Some(store) = paths.as_mut() {
        store.absorb_routes(hs.routes.as_ref().expect("hopset built with paths"));
    }
    for (i, row) in estimates.iter_mut().enumerate() {
        for (v, est) in row.iter_mut().enumerate() {
            let short = sd.dist_to_source_index(v, i);
            if short < *est {
                *est = short;
            }
            if short < INF {
                if let Some(store) = paths.as_mut() {
                    let chain: Vec<u32> = sd
                        .chain(i, v)
                        .expect("detected pair has a chain")
                        .into_iter()
                        .map(|x| x as u32)
                        .collect();
                    store.offer_walk(g, i, short, &chain);
                }
            }
            if v == sources[i] {
                *est = 0;
            }
        }
    }
    // Adjacency is known locally.
    for (i, &s) in sources.iter().enumerate() {
        for &u in g.neighbors(s) {
            let e = &mut estimates[i][u as usize];
            *e = (*e).min(1);
            if let Some(store) = paths.as_mut() {
                store.offer_edge(i, u as usize);
            }
        }
    }
    Ok(Mssp {
        sources: sources.to_vec(),
        estimates,
        t,
        guarantee: cfg.guarantee(),
        paths: paths.map(std::sync::Arc::new),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Short-range pairs (d ≤ t) must get a genuine (1+ε) guarantee.
    #[test]
    fn short_range_is_one_plus_eps() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (name, g) in [
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("gnp", generators::connected_gnp(80, 0.05, &mut rng)),
        ] {
            let cfg = MsspConfig::new(g.n(), 0.5, 2).unwrap();
            let sources: Vec<usize> = (0..g.n()).step_by(9).collect();
            let mut ledger = RoundLedger::new(g.n());
            let out = run(&g, &sources, &cfg, &mut rng, &mut ledger).unwrap();
            for (i, &s) in sources.iter().enumerate() {
                let exact = bfs::sssp(&g, s);
                for v in 0..g.n() {
                    if exact[v] == 0 || exact[v] > out.t {
                        continue;
                    }
                    let est = out.dist(i, v);
                    assert!(est >= exact[v], "{name}: undercut at ({s},{v})");
                    assert!(
                        (est as f64) <= (1.0 + cfg.eps) * exact[v] as f64 + 1e-9,
                        "{name}: est {est} vs d {} at ({s},{v})",
                        exact[v]
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_variant_matches_guarantee() {
        let g = generators::caveman(6, 6);
        let cfg = MsspConfig::new(g.n(), 0.5, 2).unwrap();
        let sources = [0usize, 10, 20, 30];
        let mut ledger = RoundLedger::new(g.n());
        let out = run_deterministic(&g, &sources, &cfg, &mut ledger).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let exact = bfs::sssp(&g, s);
            for v in 0..g.n() {
                if exact[v] == 0 || exact[v] > out.t {
                    continue;
                }
                let est = out.dist(i, v);
                assert!(est >= exact[v]);
                assert!((est as f64) <= (1.0 + cfg.eps) * exact[v] as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn source_count_validation() {
        let g = generators::cycle(16);
        let cfg = MsspConfig::new(16, 0.5, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ledger = RoundLedger::new(16);
        let too_many: Vec<usize> = (0..16).fold(Vec::new(), |mut acc, v| {
            acc.push(v);
            acc.push(v);
            acc
        });
        let err = run(&g, &too_many, &cfg, &mut rng, &mut ledger).unwrap_err();
        assert!(matches!(
            err,
            CcError::Mssp(MsspError::TooManySources { .. })
        ));
        let err = run(&g, &[], &cfg, &mut rng, &mut ledger).unwrap_err();
        assert_eq!(err, CcError::Mssp(MsspError::NoSources));
        let err = run(&g, &[99], &cfg, &mut rng, &mut ledger).unwrap_err();
        assert!(matches!(
            err,
            CcError::Mssp(MsspError::SourceOutOfRange { .. })
        ));
    }

    #[test]
    fn sources_have_zero_self_distance() {
        let g = generators::grid(6, 6);
        let cfg = MsspConfig::new(g.n(), 0.5, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ledger = RoundLedger::new(g.n());
        let sources = [3usize, 17];
        let out = run(&g, &sources, &cfg, &mut rng, &mut ledger).unwrap();
        assert_eq!(out.dist(0, 3), 0);
        assert_eq!(out.dist(1, 17), 0);
    }

    #[test]
    fn long_range_estimates_exist_and_upper_bound() {
        // A long cycle with a small override threshold exercises the
        // emulator path for pairs beyond t.
        let g = generators::cycle(100);
        let mut cfg = MsspConfig::new(100, 0.5, 2).unwrap();
        cfg.t_override = Some(8);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut ledger = RoundLedger::new(100);
        let out = run(&g, &[0], &cfg, &mut rng, &mut ledger).unwrap();
        let exact = bfs::sssp(&g, 0);
        for v in 0..100 {
            assert!(out.dist(0, v) >= exact[v]);
            assert!(out.dist(0, v) < INF, "missing estimate at {v}");
        }
    }
}
