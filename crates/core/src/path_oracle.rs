//! The frozen route-serving side of a solved session: [`PathOracle`].
//!
//! [`crate::DistOracle`] answers *how far*; this module answers *which way*.
//! A `PathOracle` is frozen beside the distance oracle by
//! [`crate::Solver::freeze_with_paths`] from the witness stores the
//! pipelines filled while solving (`SolverBuilder::record_paths(true)`), and
//! serves
//!
//! * [`path`](PathOracle::path)`(u, v) → Option<Route>` — a real walk in the
//!   input graph whose exact weight is at most the frozen estimate and
//!   therefore satisfies the same tagged [`Guarantee`];
//! * [`path_batch`](PathOracle::path_batch) — the batched form;
//! * the embedded distance oracle ([`PathOracle::dist_oracle`]) for plain
//!   distance queries,
//!
//! all lock-free from `&self` (`PathOracle: Send + Sync` — one oracle behind
//! an `Arc` serves any number of threads).
//!
//! Snapshots extend the `CCDO` distance format: a `CCRO` file embeds the
//! distance snapshot and appends the witness arenas and per-pair witness
//! tables (layout in `DESIGN.md` §8.3).
//!
//! ```
//! use cc_core::{Execution, SolverBuilder};
//! use cc_graphs::generators;
//!
//! let g = generators::caveman(5, 5);
//! let mut solver = SolverBuilder::new(g.clone())
//!     .eps(0.5)
//!     .execution(Execution::Seeded(3))
//!     .record_paths(true)
//!     .build()?;
//! solver.apsp_3eps()?;
//! let oracle = std::sync::Arc::new(solver.freeze_with_paths()?);
//! let route = oracle.path(0, 20).expect("connected");
//! assert_eq!(route.edges[0].0, 0);
//! for (x, y) in &route.edges {
//!     assert!(g.has_edge(*x as usize, *y as usize));
//! }
//! # Ok::<(), cc_core::CcError>(())
//! ```

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use cc_graphs::{ByteOwner, Dist, DistStorage, PodData};
use cc_routes::{PairWitness, PathStore, RecId, RouteArena, RowStore};

use crate::oracle::{DistOracle, Guarantee, SnapshotError};
use crate::snapshot::header::{checked_payload, fnv1a, Cursor};
use crate::snapshot::v2::{owner_from_bytes, SectionWriter, SnapshotView};

/// One reconstructed route: a real walk in the input graph `G`.
#[derive(Clone, PartialEq, Debug)]
pub struct Route {
    /// The query endpoints.
    pub src: u32,
    /// See [`Route::src`].
    pub dst: u32,
    /// The walk as directed `G` edges, consecutive edges sharing their
    /// middle vertex (empty for `src == dst`).
    pub edges: Vec<(u32, u32)>,
    /// The exact weight of the walk in `G` (the edge count — inputs are
    /// unweighted). Always `d_G(src,dst) ≤ weight ≤` the frozen estimate,
    /// so the tagged guarantee bounds it too.
    pub weight: Dist,
    /// The [`Guarantee`] of the pipeline whose estimate (and witness) won
    /// this pair — the same tag [`DistOracle::dist`] reports.
    pub guarantee: Guarantee,
}

impl Route {
    /// The walk as a vertex sequence `src, …, dst`.
    pub fn vertices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.src);
        out.extend(self.edges.iter().map(|&(_, y)| y));
        out
    }
}

/// One pipeline's frozen witnesses.
#[derive(Clone, Debug)]
pub enum PathProvider {
    /// Symmetric per-pair store (APSP pipelines).
    Pairs(Arc<PathStore>),
    /// Row store (MSSP results).
    Rows(Arc<RowStore>),
}

/// An immutable, `Arc`-shareable route oracle over solved witnesses.
///
/// Holds the frozen [`DistOracle`] plus, per packed pair, which pipeline's
/// witness store serves its route. All query methods take `&self` and touch
/// only frozen data.
#[derive(Clone, Debug)]
pub struct PathOracle {
    oracle: DistOracle,
    /// Per packed pair: index into `providers` of the winning pipeline
    /// (meaningless where no estimate is frozen). [`PodData`] so v2
    /// snapshots serve it in place.
    origins: PodData<u8>,
    providers: Vec<PathProvider>,
}

// CCRO v2 section ids. Providers get a block of ids each:
// `RSEC_PROVIDER_BASE + RSEC_PROVIDER_STRIDE * p + k`.
const RSEC_META: u16 = 1;
const RSEC_DIST: u16 = 2;
const RSEC_ORIGINS: u16 = 3;
const RSEC_PROVIDER_BASE: u16 = 16;
const RSEC_PROVIDER_STRIDE: u16 = 8;

// Format maximum for the provider table, enforced symmetrically by the
// writers (as `SnapshotError::TooLarge`) and both loaders (as `Corrupt`):
// origins index providers through a u8, so 256 rows is all v1/v2 address.
const MAX_PROVIDERS: usize = 256;

/// First section id of provider `p`'s group, checked instead of narrowing
/// `p` with `as` (any in-range `p < MAX_PROVIDERS` fits comfortably).
fn provider_section_base(p: usize) -> Option<u16> {
    u16::try_from(p)
        .ok()
        .and_then(|p| RSEC_PROVIDER_STRIDE.checked_mul(p))
        .and_then(|off| RSEC_PROVIDER_BASE.checked_add(off))
}

impl PathOracle {
    /// Assembles an oracle from a frozen distance oracle, a per-pair origin
    /// table (index into `providers` of the store serving each pair) and the
    /// witness providers. [`crate::Solver::freeze_with_paths`] is the usual
    /// entry point; this constructor exists for custom serving layers and
    /// golden-file references.
    ///
    /// # Panics
    ///
    /// Panics if `origins` is not one byte per packed pair or `providers`
    /// is empty.
    pub fn new(
        oracle: DistOracle,
        origins: impl Into<PodData<u8>>,
        providers: Vec<PathProvider>,
    ) -> Self {
        let origins = origins.into();
        let n = oracle.n();
        assert_eq!(origins.len(), n * (n + 1) / 2, "one origin per packed pair");
        assert!(!providers.is_empty(), "at least one witness provider");
        PathOracle {
            oracle,
            origins,
            providers,
        }
    }

    /// Dimension `n` (vertices are `0..n`).
    pub fn n(&self) -> usize {
        self.oracle.n()
    }

    /// The embedded distance oracle (same values and tags the routes are
    /// served under).
    pub fn dist_oracle(&self) -> &DistOracle {
        &self.oracle
    }

    /// Convenience passthrough to [`DistOracle::dist`].
    pub fn dist(&self, u: usize, v: usize) -> Option<crate::oracle::PointEstimate> {
        self.oracle.dist(u, v)
    }

    /// Approximate bytes held by the witness side (arena nodes + per-pair
    /// witness tables); the distance side is
    /// [`DistOracle::storage_bytes`].
    pub fn witness_bytes(&self) -> usize {
        self.providers
            .iter()
            .map(|p| match p {
                PathProvider::Pairs(s) => s.arena().len() * 12 + s.witnesses().len() * 5,
                PathProvider::Rows(r) => r.arena().len() * 12 + r.recs().len() * 5,
            })
            .sum::<usize>()
            + self.origins.len()
    }

    /// The route for `(u, v)`: a real walk in `G` running `u → v`, its exact
    /// weight, and the guarantee of the pipeline that produced it. `None`
    /// when out of range or no estimate was frozen for the pair;
    /// `Some(empty)` on the diagonal.
    pub fn path(&self, u: usize, v: usize) -> Option<Route> {
        let mut edges = Vec::new();
        let (weight, guarantee) = self.path_into(u, v, &mut edges)?;
        // In range after path_into (u, v < n ≤ the u32-indexed table size).
        let (src, dst) = (u32::try_from(u).ok()?, u32::try_from(v).ok()?);
        Some(Route {
            src,
            dst,
            edges,
            weight,
            guarantee,
        })
    }

    /// The allocation-free form of [`PathOracle::path`]: appends the
    /// route's edges to `out` (per-worker scratch on serving paths) and
    /// returns its weight and guarantee. On `None` the buffer keeps its
    /// original contents.
    pub fn path_into(
        &self,
        u: usize,
        v: usize,
        out: &mut Vec<(u32, u32)>,
    ) -> Option<(Dist, Guarantee)> {
        let est = self.oracle.dist(u, v)?;
        if u == v {
            return Some((0, est.guarantee));
        }
        let origin = self.origins[DistStorage::packed_index(self.n(), u, v)];
        let count = match self.providers.get(origin as usize)? {
            PathProvider::Pairs(s) => s.emit_into(u, v, out)?,
            PathProvider::Rows(r) => emit_row_pair_into(r, u, v, out)?,
        };
        Some((count as Dist, est.guarantee))
    }

    /// Answers a batch of route queries in order — exactly equivalent to
    /// mapping [`PathOracle::path`] over `pairs`.
    pub fn path_batch(&self, pairs: &[(usize, usize)]) -> Vec<Option<Route>> {
        pairs.iter().map(|&(u, v)| self.path(u, v)).collect()
    }

    // ── Snapshot format ──────────────────────────────────────────────────
    //
    // Version 1, all integers little-endian (layout: DESIGN.md §8.3):
    //
    //   magic  b"CCRO"                                    4 bytes
    //   version u16 = 1                                   2
    //   L      u64 embedded CCDO length                   8
    //   CCDO   the DistOracle snapshot, verbatim          L
    //   E      u64 origin count (= n(n+1)/2)              8
    //   E × origin u8                                     E
    //   P      u16 provider count                         2
    //   P × provider:
    //     kind u8 (0 pairs, 1 rows)                       1
    //     N    u64 arena nodes                            8
    //     N × { tag u8, a u32, b u32 }                    9 each
    //     pairs: W u64 (= E), W × { tag u8, payload u32 } 8 + 5W
    //     rows:  S u64, S × source u32,                   8 + 4S
    //            S·n × { tag u8, payload u32 }            5Sn
    //   checksum u64: FNV-1a over every preceding byte    8

    /// The provider count as its wire type, or [`SnapshotError::TooLarge`]
    /// when the table exceeds the format maximum both loaders enforce
    /// (origins index providers through a u8, so 256 is all the formats can
    /// address — a larger table would silently truncate the u16 count).
    fn checked_provider_count(&self) -> Result<u16, SnapshotError> {
        u16::try_from(self.providers.len())
            .ok()
            .filter(|&c| c as usize <= MAX_PROVIDERS)
            .ok_or(SnapshotError::TooLarge {
                what: "provider count",
                count: self.providers.len(),
                max: MAX_PROVIDERS,
            })
    }

    /// Serializes the oracle into the versioned `CCRO` snapshot and writes
    /// it to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; a provider table larger than the
    /// format's 256-row maximum surfaces as [`SnapshotError::TooLarge`]
    /// (wrapped in `InvalidData`) instead of silently truncating the `u16`
    /// count field.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let p_count = self.checked_provider_count()?;
        let mut inner = Vec::new();
        self.oracle.save(&mut inner)?;
        let mut buf: Vec<u8> = Vec::with_capacity(inner.len() + self.origins.len() + 64);
        buf.extend_from_slice(b"CCRO");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        buf.extend_from_slice(&inner);
        buf.extend_from_slice(&(self.origins.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.origins);
        buf.extend_from_slice(&p_count.to_le_bytes());
        for provider in &self.providers {
            let arena = match provider {
                PathProvider::Pairs(s) => {
                    buf.push(0);
                    s.arena()
                }
                PathProvider::Rows(r) => {
                    buf.push(1);
                    r.arena()
                }
            };
            buf.extend_from_slice(&(arena.len() as u64).to_le_bytes());
            for i in 0..arena.len() {
                let (tag, a, b) = arena.wire_node(i);
                buf.push(tag);
                buf.extend_from_slice(&a.to_le_bytes());
                buf.extend_from_slice(&b.to_le_bytes());
            }
            match provider {
                PathProvider::Pairs(s) => {
                    let wits = s.witnesses();
                    buf.extend_from_slice(&(wits.len() as u64).to_le_bytes());
                    for &wit in wits {
                        let (tag, payload) = match wit {
                            PairWitness::None => (0u8, 0u32),
                            PairWitness::Rec { rec, rev: false } => (1, rec.index()),
                            PairWitness::Rec { rec, rev: true } => (2, rec.index()),
                            PairWitness::Via(w) => (3, w),
                        };
                        buf.push(tag);
                        buf.extend_from_slice(&payload.to_le_bytes());
                    }
                }
                PathProvider::Rows(r) => {
                    buf.extend_from_slice(&(r.sources().len() as u64).to_le_bytes());
                    for &s in r.sources() {
                        buf.extend_from_slice(&s.to_le_bytes());
                    }
                    for rec in r.recs() {
                        match rec {
                            None => {
                                buf.push(0);
                                buf.extend_from_slice(&0u32.to_le_bytes());
                            }
                            Some(rec) => {
                                buf.push(1);
                                buf.extend_from_slice(&rec.index().to_le_bytes());
                            }
                        }
                    }
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        w.write_all(&buf)
    }

    /// Reads a snapshot produced by [`PathOracle::save`]. Magic and version
    /// are inspected before the checksum (an unknown version reports
    /// [`SnapshotError::UnsupportedVersion`], never a checksum mismatch);
    /// every count is bounded by the bytes actually present before anything
    /// is allocated, and all record/witness indices are range-checked.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for I/O failures, a wrong magic, an
    /// unsupported version, or a corrupt/truncated payload.
    pub fn load<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_snapshot_bytes(&buf)
    }

    /// [`PathOracle::load`] over an in-memory snapshot, dispatching on the
    /// version field. v2 bytes are copied once into an aligned owner so the
    /// hot tables can be viewed in place; use
    /// [`PathOracle::load_v2_shared`] to serve an existing owner (a mapped
    /// file) with no copy at all.
    pub fn from_snapshot_bytes(buf: &[u8]) -> Result<Self, SnapshotError> {
        let (magic, version) = crate::snapshot::sniff(buf)?;
        if &magic != b"CCRO" {
            return Err(SnapshotError::BadMagic(magic));
        }
        match version {
            1 => Self::load_v1(buf),
            2 => Self::load_v2_shared(owner_from_bytes(buf)),
            v => Err(SnapshotError::UnsupportedVersion(v)),
        }
    }

    /// Loads a v2 snapshot directly from a stable byte owner: the embedded
    /// distance tables, origins and route-arena columns become zero-copy
    /// views into the owner on little-endian targets.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`PathOracle::load`] does; a v1 owner
    /// reports [`SnapshotError::UnsupportedVersion`] (convert it first).
    pub fn load_v2_shared(owner: Arc<dyn ByteOwner>) -> Result<Self, SnapshotError> {
        let view = SnapshotView::parse(owner, b"CCRO")?;
        Self::load_v2(&view)
    }

    fn load_v1(buf: &[u8]) -> Result<Self, SnapshotError> {
        let payload = checked_payload(buf, b"CCRO", 1)?;
        let mut c = Cursor::new(payload);
        let _ = c.take_n::<4>()?; // magic, validated above
        let _ = c.take_n::<2>()?; // version, validated above
        let inner_len = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("inner length exceeds the address space"))?;
        let inner = c.take(inner_len)?;
        let oracle = DistOracle::load(&mut &inner[..])?;
        let n = oracle.n();
        let origin_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("origin count exceeds the address space"))?;
        if origin_count != n * (n + 1) / 2 {
            return Err(SnapshotError::corrupt("origin count does not match n"));
        }
        let origins = c.take(origin_count)?.to_vec();
        let provider_count = u16::from_le_bytes(c.take_n::<2>()?) as usize;
        if provider_count == 0 {
            return Err(SnapshotError::corrupt("no witness providers"));
        }
        if origins.iter().any(|&o| o as usize >= provider_count) {
            return Err(SnapshotError::corrupt("origin beyond provider table"));
        }
        let mut providers = Vec::with_capacity(provider_count);
        for _ in 0..provider_count {
            let kind = c.take_n::<1>()?[0];
            let node_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
                .map_err(|_| SnapshotError::corrupt("node count exceeds the address space"))?;
            if c.remaining() / 9 < node_count {
                return Err(SnapshotError::corrupt("truncated witness arena"));
            }
            let mut arena = RouteArena::new();
            for _ in 0..node_count {
                let tag = c.take_n::<1>()?[0];
                let a = u32::from_le_bytes(c.take_n::<4>()?);
                let b = u32::from_le_bytes(c.take_n::<4>()?);
                arena
                    .push_wire_node(tag, a, b, n)
                    .ok_or_else(|| SnapshotError::corrupt("invalid witness arena node"))?;
            }
            match kind {
                0 => {
                    let wit_count =
                        usize::try_from(u64::from_le_bytes(c.take_n::<8>()?)).map_err(|_| {
                            SnapshotError::corrupt("witness count exceeds the address space")
                        })?;
                    if wit_count != origin_count {
                        return Err(SnapshotError::corrupt("pair witness count mismatch"));
                    }
                    if c.remaining() / 5 < wit_count {
                        return Err(SnapshotError::corrupt("truncated pair witnesses"));
                    }
                    let mut entries = Vec::with_capacity(wit_count);
                    for _ in 0..wit_count {
                        let tag = c.take_n::<1>()?[0];
                        let payload = u32::from_le_bytes(c.take_n::<4>()?);
                        let entry = match tag {
                            0 => PairWitness::None,
                            1 | 2 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt(
                                        "witness record out of range",
                                    ));
                                }
                                PairWitness::Rec {
                                    rec: RecId::from_index(payload),
                                    rev: tag == 2,
                                }
                            }
                            3 => {
                                if payload as usize >= n {
                                    return Err(SnapshotError::corrupt("via witness out of range"));
                                }
                                PairWitness::Via(payload)
                            }
                            _ => return Err(SnapshotError::corrupt("unknown witness tag")),
                        };
                        entries.push(entry);
                    }
                    providers.push(PathProvider::Pairs(Arc::new(PathStore::from_parts(
                        n, arena, entries,
                    ))));
                }
                1 => {
                    let source_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
                        .map_err(|_| {
                            SnapshotError::corrupt("source count exceeds the address space")
                        })?;
                    if c.remaining() / 4 < source_count {
                        return Err(SnapshotError::corrupt("truncated source list"));
                    }
                    let mut sources = Vec::with_capacity(source_count);
                    for _ in 0..source_count {
                        let s = u32::from_le_bytes(c.take_n::<4>()?);
                        if s as usize >= n {
                            return Err(SnapshotError::corrupt("source out of range"));
                        }
                        sources.push(s);
                    }
                    let cell_count = source_count
                        .checked_mul(n)
                        .ok_or_else(|| SnapshotError::corrupt("row store too large"))?;
                    if c.remaining() / 5 < cell_count {
                        return Err(SnapshotError::corrupt("truncated row witnesses"));
                    }
                    let mut recs = Vec::with_capacity(cell_count);
                    for _ in 0..cell_count {
                        let tag = c.take_n::<1>()?[0];
                        let payload = u32::from_le_bytes(c.take_n::<4>()?);
                        let rec = match tag {
                            0 => None,
                            1 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt("row record out of range"));
                                }
                                Some(RecId::from_index(payload))
                            }
                            _ => return Err(SnapshotError::corrupt("unknown row witness tag")),
                        };
                        recs.push(rec);
                    }
                    providers.push(PathProvider::Rows(Arc::new(RowStore::from_parts(
                        n, sources, arena, recs,
                    ))));
                }
                _ => return Err(SnapshotError::corrupt("unknown provider kind")),
            }
        }
        if !c.at_end() {
            return Err(SnapshotError::corrupt("trailing bytes after payload"));
        }
        Ok(PathOracle {
            oracle,
            origins: origins.into(),
            providers,
        })
    }

    // ── Snapshot format v2 ───────────────────────────────────────────────
    //
    // The v2 frame and directory are documented in `crate::snapshot::v2`
    // (and DESIGN.md §9). CCRO sections:
    //
    //   1 META       n u64, origin_count u64, provider_count u64 (24 bytes)
    //   2 DIST       a complete embedded CCDO v2 snapshot (64-aligned, so
    //                its inner section offsets stay aligned absolutely)
    //   3 ORIGINS    origin_count × u8                           (hot)
    //
    // then, for provider `p` (0-based), ids `16 + 8p + k`:
    //
    //   +0 PMETA     kind u8, pad[7], node_count u64, aux u64
    //                (aux = witness count for pairs, source count for rows)
    //   +1 A_TAGS    node_count × u8   arena node tags           (hot)
    //   +2 A_OPA     node_count × u32  arena first operands      (hot)
    //   +3 A_OPB     node_count × u32  arena second operands     (hot)
    //   +4 A_LENS    node_count × u32  arena cached lengths      (hot)
    //   +5 W_TAGS    W × u8   witness tags  (pairs: W = origin_count;
    //                rows: W = source_count·n)
    //   +6 W_PAYLOAD W × u32  witness payloads
    //   +7 SOURCES   [rows only] source_count × u32

    /// Serializes the oracle into snapshot format v2 — the aligned-section
    /// layout [`PathOracle::load_v2_shared`] serves zero-copy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; an unrepresentable table (see
    /// [`PathOracle::save`]) surfaces as `InvalidData`.
    pub fn save_v2<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let bytes = self.to_v2_bytes()?;
        w.write_all(&bytes)
    }

    /// [`PathOracle::save_v2`] to a filesystem path, crash-safely
    /// ([`crate::snapshot::write_atomic`]): a crash mid-save leaves the
    /// previous snapshot untouched, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_v2_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        self.save_v2(&mut bytes)?;
        crate::snapshot::write_atomic(path.as_ref(), &bytes)
    }

    pub(crate) fn to_v2_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let _ = self.checked_provider_count()?;
        let mut w = SectionWriter::new(b"CCRO");
        let mut meta = Vec::with_capacity(24);
        meta.extend_from_slice(&(self.n() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.origins.len() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.providers.len() as u64).to_le_bytes());
        w.section(RSEC_META, &meta);
        let inner = self.oracle.to_v2_bytes()?;
        w.section(RSEC_DIST, &inner);
        w.section(RSEC_ORIGINS, &self.origins);
        for (p, provider) in self.providers.iter().enumerate() {
            let base = provider_section_base(p)
                .ok_or_else(|| SnapshotError::corrupt("provider section id overflow"))?;
            let arena = match provider {
                PathProvider::Pairs(s) => s.arena(),
                PathProvider::Rows(r) => r.arena(),
            };
            let (a_tags, a_opa, a_opb, a_lens) = arena.sections();
            let mut pmeta = Vec::with_capacity(24);
            let aux = match provider {
                PathProvider::Pairs(s) => {
                    pmeta.push(0);
                    s.witnesses().len() as u64
                }
                PathProvider::Rows(r) => {
                    pmeta.push(1);
                    r.sources().len() as u64
                }
            };
            pmeta.extend_from_slice(&[0u8; 7]);
            pmeta.extend_from_slice(&(arena.len() as u64).to_le_bytes());
            pmeta.extend_from_slice(&aux.to_le_bytes());
            w.section(base, &pmeta);
            w.section(base + 1, a_tags);
            w.section_u32(base + 2, a_opa);
            w.section_u32(base + 3, a_opb);
            w.section_u32(base + 4, a_lens);
            let (w_tags, w_payloads): (Vec<u8>, Vec<u32>) = match provider {
                PathProvider::Pairs(s) => s
                    .witnesses()
                    .iter()
                    .map(|&wit| match wit {
                        PairWitness::None => (0u8, 0u32),
                        PairWitness::Rec { rec, rev: false } => (1, rec.index()),
                        PairWitness::Rec { rec, rev: true } => (2, rec.index()),
                        PairWitness::Via(via) => (3, via),
                    })
                    .unzip(),
                PathProvider::Rows(r) => r
                    .recs()
                    .iter()
                    .map(|rec| match rec {
                        None => (0u8, 0u32),
                        Some(rec) => (1, rec.index()),
                    })
                    .unzip(),
            };
            w.section(base + 5, &w_tags);
            w.section_u32(base + 6, &w_payloads);
            if let PathProvider::Rows(r) = provider {
                w.section_u32(base + 7, r.sources());
            }
        }
        w.finish()
    }

    /// Loads a v2 snapshot from a validated [`SnapshotView`].
    pub(crate) fn load_v2(view: &SnapshotView) -> Result<Self, SnapshotError> {
        let meta = view.bytes_of(RSEC_META, "CCRO meta")?;
        let mut c = Cursor::new(meta);
        let n = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("n exceeds the address space"))?;
        let origin_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("origin count exceeds the address space"))?;
        let provider_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("provider count exceeds the address space"))?;
        if !c.at_end() {
            return Err(SnapshotError::corrupt("CCRO meta section length mismatch"));
        }
        let expected_origins = n
            .checked_add(1)
            .and_then(|m| n.checked_mul(m))
            .map(|x| x / 2);
        if expected_origins != Some(origin_count) {
            return Err(SnapshotError::corrupt("origin count does not match n"));
        }
        if provider_count == 0 || provider_count > 256 {
            return Err(SnapshotError::corrupt("provider count out of range"));
        }
        let oracle = DistOracle::load_v2(&view.sub_view(RSEC_DIST, b"CCDO", "embedded CCDO")?)?;
        if oracle.n() != n {
            return Err(SnapshotError::corrupt("embedded oracle dimension mismatch"));
        }
        let origins = view.u8_data(RSEC_ORIGINS, origin_count, "origin")?;
        if origins.iter().any(|&o| o as usize >= provider_count) {
            return Err(SnapshotError::corrupt("origin beyond provider table"));
        }
        let mut providers = Vec::with_capacity(provider_count);
        for p in 0..provider_count {
            let base = provider_section_base(p)
                .ok_or_else(|| SnapshotError::corrupt("provider section id overflow"))?;
            let pmeta = view.bytes_of(base, "provider meta")?;
            let mut pc = Cursor::new(pmeta);
            let kind = pc.take_n::<1>()?[0];
            let _ = pc.take(7)?; // padding
            let node_count = usize::try_from(u64::from_le_bytes(pc.take_n::<8>()?))
                .map_err(|_| SnapshotError::corrupt("node count exceeds the address space"))?;
            let aux = usize::try_from(u64::from_le_bytes(pc.take_n::<8>()?))
                .map_err(|_| SnapshotError::corrupt("provider aux exceeds the address space"))?;
            if !pc.at_end() {
                return Err(SnapshotError::corrupt("provider meta length mismatch"));
            }
            // Section length checks inside u8_data/u32_data bound every
            // count by bytes actually present before anything is decoded.
            let a_tags = view.u8_data(base + 1, node_count, "arena tag")?;
            let a_opa = view.u32_data(base + 2, node_count, "arena operand")?;
            let a_opb = view.u32_data(base + 3, node_count, "arena operand")?;
            let a_lens = view.u32_data(base + 4, node_count, "arena length")?;
            let arena = RouteArena::from_sections(a_tags, a_opa, a_opb, a_lens, n)
                .ok_or_else(|| SnapshotError::corrupt("invalid witness arena node"))?;
            match kind {
                0 => {
                    if aux != origin_count {
                        return Err(SnapshotError::corrupt("pair witness count mismatch"));
                    }
                    let w_tags = view.u8_data(base + 5, aux, "pair witness tag")?;
                    let w_payloads = view.u32_data(base + 6, aux, "pair witness payload")?;
                    let mut entries = Vec::with_capacity(aux);
                    for (&tag, &payload) in w_tags.iter().zip(w_payloads.iter()) {
                        let entry = match tag {
                            0 => PairWitness::None,
                            1 | 2 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt(
                                        "witness record out of range",
                                    ));
                                }
                                PairWitness::Rec {
                                    rec: RecId::from_index(payload),
                                    rev: tag == 2,
                                }
                            }
                            3 => {
                                if payload as usize >= n {
                                    return Err(SnapshotError::corrupt("via witness out of range"));
                                }
                                PairWitness::Via(payload)
                            }
                            _ => return Err(SnapshotError::corrupt("unknown witness tag")),
                        };
                        entries.push(entry);
                    }
                    providers.push(PathProvider::Pairs(Arc::new(PathStore::from_parts(
                        n, arena, entries,
                    ))));
                }
                1 => {
                    let sources = view.u32_data(base + 7, aux, "source")?;
                    if sources.iter().any(|&s| s as usize >= n) {
                        return Err(SnapshotError::corrupt("source out of range"));
                    }
                    let cell_count = aux
                        .checked_mul(n)
                        .ok_or_else(|| SnapshotError::corrupt("row store too large"))?;
                    let w_tags = view.u8_data(base + 5, cell_count, "row witness tag")?;
                    let w_payloads = view.u32_data(base + 6, cell_count, "row witness payload")?;
                    let mut recs = Vec::with_capacity(cell_count);
                    for (&tag, &payload) in w_tags.iter().zip(w_payloads.iter()) {
                        let rec = match tag {
                            0 => None,
                            1 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt("row record out of range"));
                                }
                                Some(RecId::from_index(payload))
                            }
                            _ => return Err(SnapshotError::corrupt("unknown row witness tag")),
                        };
                        recs.push(rec);
                    }
                    providers.push(PathProvider::Rows(Arc::new(RowStore::from_parts(
                        n,
                        sources.to_vec(),
                        arena,
                        recs,
                    ))));
                }
                _ => return Err(SnapshotError::corrupt("unknown provider kind")),
            }
        }
        Ok(PathOracle {
            oracle,
            origins,
            providers,
        })
    }

    /// [`PathOracle::save`] to a filesystem path, crash-safely
    /// ([`crate::snapshot::write_atomic`]): a crash mid-save leaves the
    /// previous snapshot untouched, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        self.save(&mut bytes)?;
        crate::snapshot::write_atomic(path.as_ref(), &bytes)
    }

    /// [`PathOracle::load`] from a filesystem path.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`PathOracle::load`] does.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let mut f = std::fs::File::open(path)?;
        Self::load(&mut f)
    }
}

impl PartialEq for PathOracle {
    fn eq(&self, other: &Self) -> bool {
        if self.oracle != other.oracle || self.origins != other.origins {
            return false;
        }
        if self.providers.len() != other.providers.len() {
            return false;
        }
        self.providers
            .iter()
            .zip(&other.providers)
            .all(|(a, b)| match (a, b) {
                (PathProvider::Pairs(x), PathProvider::Pairs(y)) => {
                    x.arena() == y.arena() && x.witnesses() == y.witnesses()
                }
                (PathProvider::Rows(x), PathProvider::Rows(y)) => {
                    x.arena() == y.arena() && x.sources() == y.sources() && x.recs() == y.recs()
                }
                _ => false,
            })
    }
}

/// Emits a row-store walk for the ordered pair `(u, v)` where one endpoint
/// is a source: the **shortest recorded walk** over every row covering the
/// pair (first row on ties). Selecting by walk length — not by the mirrored
/// estimate values, which snapshots do not persist — keeps loaded oracles
/// byte-for-byte equivalent to the ones that were saved, and the winner is
/// never heavier than the frozen estimate (some covering row realized it,
/// and that row's walk is at most its value).
fn emit_row_pair_into(
    r: &RowStore,
    u: usize,
    v: usize,
    out: &mut Vec<(u32, u32)>,
) -> Option<usize> {
    let n = r.n();
    let mut best: Option<(u32, usize, bool)> = None; // (walk len, row, reversed)
    for (i, &s) in r.sources().iter().enumerate() {
        for (from, to, reversed) in [(u, v, false), (v, u, true)] {
            if s as usize != from {
                continue;
            }
            if let Some(rec) = r.recs()[i * n + to] {
                let len = r.arena().len_of(rec);
                if best.is_none_or(|b| len < b.0) {
                    best = Some((len, i, reversed));
                }
            }
        }
    }
    let (_, i, reversed) = best?;
    let start = out.len();
    let count = r.emit_into(i, if reversed { u } else { v }, out)?;
    if reversed {
        out[start..].reverse();
        for e in &mut out[start..] {
            *e = (e.1, e.0);
        }
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::Graph;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn tiny_oracle() -> PathOracle {
        // Hand-built: a 4-path with a pair store for all pairs.
        let g = path_graph(4);
        let mut store = PathStore::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                let verts: Vec<u32> = (u as u32..=v as u32).collect();
                store.offer_walk(&g, (v - u) as Dist, &verts);
            }
        }
        let mut m = crate::estimates::DistanceMatrix::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    m.improve(u, v, u.abs_diff(v) as Dist);
                }
            }
        }
        let oracle = DistOracle::from_matrix(
            &m,
            Guarantee::mult2(0.5),
            cc_graphs::StorageKind::SymmetricPacked,
        );
        PathOracle::new(
            oracle,
            vec![0; 10],
            vec![PathProvider::Pairs(Arc::new(store))],
        )
    }

    #[test]
    fn paths_are_served_with_guarantees() {
        let o = tiny_oracle();
        let route = o.path(0, 3).expect("connected");
        assert_eq!(route.edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(route.weight, 3);
        assert_eq!(route.vertices(), vec![0, 1, 2, 3]);
        assert_eq!(route.guarantee, o.dist(0, 3).unwrap().guarantee);
        let back = o.path(3, 0).unwrap();
        assert_eq!(back.edges, vec![(3, 2), (2, 1), (1, 0)]);
        let diag = o.path(2, 2).unwrap();
        assert_eq!((diag.weight, diag.edges.len()), (0, 0));
        assert_eq!(o.path(0, 9), None, "out of range");
        let batch = o.path_batch(&[(0, 3), (2, 2)]);
        assert_eq!(batch[0].as_ref().unwrap().weight, 3);
        assert!(o.witness_bytes() > 0);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_bad_frames() {
        let o = tiny_oracle();
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let back = PathOracle::load(&mut &buf[..]).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.path(1, 3), o.path(1, 3));
        let mut again = Vec::new();
        back.save(&mut again).unwrap();
        assert_eq!(buf, again, "re-save must be byte-identical");

        // Unknown version wins over the (now unverifiable) checksum.
        let mut future = Vec::new();
        future.extend_from_slice(b"CCRO");
        future.extend_from_slice(&9u16.to_le_bytes());
        future.extend_from_slice(&[0; 16]);
        assert!(matches!(
            PathOracle::load(&mut &future[..]),
            Err(SnapshotError::UnsupportedVersion(9))
        ));
        // Bad magic, flipped byte, truncation.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            PathOracle::load(&mut &bad[..]),
            Err(SnapshotError::BadMagic(_))
        ));
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(PathOracle::load(&mut &flipped[..]).is_err());
        assert!(PathOracle::load(&mut &buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn oversized_provider_table_fails_to_save_cleanly() {
        // 300 providers exceed the u8-indexed origin table; both writers
        // must surface TooLarge instead of truncating the u16 count.
        let tiny = tiny_oracle();
        let provider = tiny.providers[0].clone();
        let o = PathOracle::new(
            tiny.oracle.clone(),
            tiny.origins.clone(),
            vec![provider; 300],
        );
        let err = o.save(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("provider count"), "{err}");
        let err = o.save_v2(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        let err = o.to_v2_bytes().unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::TooLarge {
                    what: "provider count",
                    count: 300,
                    max: 256
                }
            ),
            "{err:?}"
        );
    }

    /// Both provider kinds: a pair store plus a row store over sources
    /// {0, 2}, with every pair touching vertex 0 routed to the rows.
    fn two_provider_oracle() -> PathOracle {
        let g = path_graph(4);
        let mut pairs = PathStore::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let verts: Vec<u32> = (u..=v).collect();
                pairs.offer_walk(&g, (v - u) as Dist, &verts);
            }
        }
        let mut rows = RowStore::new(4, &[0, 2]);
        for (i, s) in [0u32, 2].into_iter().enumerate() {
            for v in 0..4u32 {
                if v == s {
                    continue;
                }
                let verts: Vec<u32> = if s < v {
                    (s..=v).collect()
                } else {
                    (v..=s).rev().collect()
                };
                rows.offer_walk(&g, i, s.abs_diff(v) as Dist, &verts);
            }
        }
        let mut m = crate::estimates::DistanceMatrix::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    m.improve(u, v, u.abs_diff(v) as Dist);
                }
            }
        }
        let oracle = DistOracle::from_matrix(
            &m,
            Guarantee::mult2(0.5),
            cc_graphs::StorageKind::SymmetricPacked,
        );
        let mut origins = vec![0u8; 10];
        for v in 0..4 {
            origins[DistStorage::packed_index(4, 0, v)] = 1;
        }
        origins[DistStorage::packed_index(4, 2, 3)] = 1;
        PathOracle::new(
            oracle,
            origins,
            vec![
                PathProvider::Pairs(Arc::new(pairs)),
                PathProvider::Rows(Arc::new(rows)),
            ],
        )
    }

    #[test]
    fn snapshot_v2_round_trips_both_provider_kinds() {
        let o = two_provider_oracle();
        let mut buf = Vec::new();
        o.save_v2(&mut buf).unwrap();
        let back = PathOracle::load(&mut &buf[..]).unwrap();
        assert_eq!(back, o);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(back.path(u, v), o.path(u, v), "route ({u},{v})");
            }
        }
        // The reloaded oracle serves its hot tables from the snapshot
        // bytes (little-endian hosts; elsewhere it degrades to a copy).
        if cfg!(target_endian = "little") {
            assert!(back.dist_oracle().storage().is_shared());
        }
        let mut again = Vec::new();
        back.save_v2(&mut again).unwrap();
        assert_eq!(buf, again, "v2 re-save must be byte-identical");
    }

    #[test]
    fn snapshot_v1_to_v2_upgrade_preserves_routes() {
        let o = two_provider_oracle();
        let mut v1 = Vec::new();
        o.save(&mut v1).unwrap();
        let loaded = PathOracle::load(&mut &v1[..]).unwrap();
        let mut v2 = Vec::new();
        loaded.save_v2(&mut v2).unwrap();
        let upgraded = PathOracle::load(&mut &v2[..]).unwrap();
        assert_eq!(upgraded, o);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(upgraded.path(u, v), o.path(u, v));
                assert_eq!(upgraded.dist(u, v), o.dist(u, v));
            }
        }
    }

    #[test]
    fn snapshot_v2_rejects_corruption_with_typed_errors() {
        let o = two_provider_oracle();
        let mut buf = Vec::new();
        o.save_v2(&mut buf).unwrap();

        // Any single bit flip in the frame trips the checksum (or a
        // structural check) — never a panic, never a bogus oracle.
        for &pos in &[6, 40, buf.len() / 2, buf.len() - 9] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x01;
            assert!(
                PathOracle::load(&mut &bad[..]).is_err(),
                "flip at {pos} must be rejected"
            );
        }
        // Truncations at section boundaries and mid-directory.
        for cut in [10, 64, 200, buf.len() - 1] {
            let err = PathOracle::load(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
        let mut wrong_magic = buf.clone();
        wrong_magic[..4].copy_from_slice(b"CCDO");
        assert!(matches!(
            PathOracle::load(&mut &wrong_magic[..]),
            Err(SnapshotError::BadMagic(_))
        ));
    }
}
