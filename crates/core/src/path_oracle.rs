//! The frozen route-serving side of a solved session: [`PathOracle`].
//!
//! [`crate::DistOracle`] answers *how far*; this module answers *which way*.
//! A `PathOracle` is frozen beside the distance oracle by
//! [`crate::Solver::freeze_with_paths`] from the witness stores the
//! pipelines filled while solving (`SolverBuilder::record_paths(true)`), and
//! serves
//!
//! * [`path`](PathOracle::path)`(u, v) → Option<Route>` — a real walk in the
//!   input graph whose exact weight is at most the frozen estimate and
//!   therefore satisfies the same tagged [`Guarantee`];
//! * [`path_batch`](PathOracle::path_batch) — the batched form;
//! * the embedded distance oracle ([`PathOracle::dist_oracle`]) for plain
//!   distance queries,
//!
//! all lock-free from `&self` (`PathOracle: Send + Sync` — one oracle behind
//! an `Arc` serves any number of threads).
//!
//! Snapshots extend the `CCDO` distance format: a `CCRO` file embeds the
//! distance snapshot and appends the witness arenas and per-pair witness
//! tables (layout in `DESIGN.md` §8.3).
//!
//! ```
//! use cc_core::{Execution, SolverBuilder};
//! use cc_graphs::generators;
//!
//! let g = generators::caveman(5, 5);
//! let mut solver = SolverBuilder::new(g.clone())
//!     .eps(0.5)
//!     .execution(Execution::Seeded(3))
//!     .record_paths(true)
//!     .build()?;
//! solver.apsp_3eps()?;
//! let oracle = std::sync::Arc::new(solver.freeze_with_paths()?);
//! let route = oracle.path(0, 20).expect("connected");
//! assert_eq!(route.edges[0].0, 0);
//! for (x, y) in &route.edges {
//!     assert!(g.has_edge(*x as usize, *y as usize));
//! }
//! # Ok::<(), cc_core::CcError>(())
//! ```

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use cc_graphs::{Dist, DistStorage};
use cc_routes::{PairWitness, PathStore, RecId, RouteArena, RowStore};

use crate::oracle::{checked_payload, fnv1a, Cursor, DistOracle, Guarantee, SnapshotError};

/// One reconstructed route: a real walk in the input graph `G`.
#[derive(Clone, PartialEq, Debug)]
pub struct Route {
    /// The query endpoints.
    pub src: u32,
    /// See [`Route::src`].
    pub dst: u32,
    /// The walk as directed `G` edges, consecutive edges sharing their
    /// middle vertex (empty for `src == dst`).
    pub edges: Vec<(u32, u32)>,
    /// The exact weight of the walk in `G` (the edge count — inputs are
    /// unweighted). Always `d_G(src,dst) ≤ weight ≤` the frozen estimate,
    /// so the tagged guarantee bounds it too.
    pub weight: Dist,
    /// The [`Guarantee`] of the pipeline whose estimate (and witness) won
    /// this pair — the same tag [`DistOracle::dist`] reports.
    pub guarantee: Guarantee,
}

impl Route {
    /// The walk as a vertex sequence `src, …, dst`.
    pub fn vertices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.src);
        out.extend(self.edges.iter().map(|&(_, y)| y));
        out
    }
}

/// One pipeline's frozen witnesses.
#[derive(Clone, Debug)]
pub enum PathProvider {
    /// Symmetric per-pair store (APSP pipelines).
    Pairs(Arc<PathStore>),
    /// Row store (MSSP results).
    Rows(Arc<RowStore>),
}

/// An immutable, `Arc`-shareable route oracle over solved witnesses.
///
/// Holds the frozen [`DistOracle`] plus, per packed pair, which pipeline's
/// witness store serves its route. All query methods take `&self` and touch
/// only frozen data.
#[derive(Clone, Debug)]
pub struct PathOracle {
    oracle: DistOracle,
    /// Per packed pair: index into `providers` of the winning pipeline
    /// (meaningless where no estimate is frozen).
    origins: Vec<u8>,
    providers: Vec<PathProvider>,
}

impl PathOracle {
    /// Assembles an oracle from a frozen distance oracle, a per-pair origin
    /// table (index into `providers` of the store serving each pair) and the
    /// witness providers. [`crate::Solver::freeze_with_paths`] is the usual
    /// entry point; this constructor exists for custom serving layers and
    /// golden-file references.
    ///
    /// # Panics
    ///
    /// Panics if `origins` is not one byte per packed pair or `providers`
    /// is empty.
    pub fn new(oracle: DistOracle, origins: Vec<u8>, providers: Vec<PathProvider>) -> Self {
        let n = oracle.n();
        assert_eq!(origins.len(), n * (n + 1) / 2, "one origin per packed pair");
        assert!(!providers.is_empty(), "at least one witness provider");
        PathOracle {
            oracle,
            origins,
            providers,
        }
    }

    /// Dimension `n` (vertices are `0..n`).
    pub fn n(&self) -> usize {
        self.oracle.n()
    }

    /// The embedded distance oracle (same values and tags the routes are
    /// served under).
    pub fn dist_oracle(&self) -> &DistOracle {
        &self.oracle
    }

    /// Convenience passthrough to [`DistOracle::dist`].
    pub fn dist(&self, u: usize, v: usize) -> Option<crate::oracle::PointEstimate> {
        self.oracle.dist(u, v)
    }

    /// Approximate bytes held by the witness side (arena nodes + per-pair
    /// witness tables); the distance side is
    /// [`DistOracle::storage_bytes`].
    pub fn witness_bytes(&self) -> usize {
        self.providers
            .iter()
            .map(|p| match p {
                PathProvider::Pairs(s) => s.arena().len() * 12 + s.witnesses().len() * 5,
                PathProvider::Rows(r) => r.arena().len() * 12 + r.recs().len() * 5,
            })
            .sum::<usize>()
            + self.origins.len()
    }

    /// The route for `(u, v)`: a real walk in `G` running `u → v`, its exact
    /// weight, and the guarantee of the pipeline that produced it. `None`
    /// when out of range or no estimate was frozen for the pair;
    /// `Some(empty)` on the diagonal.
    pub fn path(&self, u: usize, v: usize) -> Option<Route> {
        let est = self.oracle.dist(u, v)?;
        if u == v {
            return Some(Route {
                src: u as u32,
                dst: v as u32,
                edges: Vec::new(),
                weight: 0,
                guarantee: est.guarantee,
            });
        }
        let origin = self.origins[DistStorage::packed_index(self.n(), u, v)];
        let edges = match self.providers.get(origin as usize)? {
            PathProvider::Pairs(s) => s.emit(u, v)?,
            PathProvider::Rows(r) => emit_row_pair(r, u, v)?,
        };
        let weight = edges.len() as Dist;
        Some(Route {
            src: u as u32,
            dst: v as u32,
            edges,
            weight,
            guarantee: est.guarantee,
        })
    }

    /// Answers a batch of route queries in order — exactly equivalent to
    /// mapping [`PathOracle::path`] over `pairs`.
    pub fn path_batch(&self, pairs: &[(usize, usize)]) -> Vec<Option<Route>> {
        pairs.iter().map(|&(u, v)| self.path(u, v)).collect()
    }

    // ── Snapshot format ──────────────────────────────────────────────────
    //
    // Version 1, all integers little-endian (layout: DESIGN.md §8.3):
    //
    //   magic  b"CCRO"                                    4 bytes
    //   version u16 = 1                                   2
    //   L      u64 embedded CCDO length                   8
    //   CCDO   the DistOracle snapshot, verbatim          L
    //   E      u64 origin count (= n(n+1)/2)              8
    //   E × origin u8                                     E
    //   P      u16 provider count                         2
    //   P × provider:
    //     kind u8 (0 pairs, 1 rows)                       1
    //     N    u64 arena nodes                            8
    //     N × { tag u8, a u32, b u32 }                    9 each
    //     pairs: W u64 (= E), W × { tag u8, payload u32 } 8 + 5W
    //     rows:  S u64, S × source u32,                   8 + 4S
    //            S·n × { tag u8, payload u32 }            5Sn
    //   checksum u64: FNV-1a over every preceding byte    8

    /// Serializes the oracle into the versioned `CCRO` snapshot and writes
    /// it to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut inner = Vec::new();
        self.oracle.save(&mut inner)?;
        let mut buf: Vec<u8> = Vec::with_capacity(inner.len() + self.origins.len() + 64);
        buf.extend_from_slice(b"CCRO");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        buf.extend_from_slice(&inner);
        buf.extend_from_slice(&(self.origins.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.origins);
        buf.extend_from_slice(&(self.providers.len() as u16).to_le_bytes());
        for provider in &self.providers {
            let arena = match provider {
                PathProvider::Pairs(s) => {
                    buf.push(0);
                    s.arena()
                }
                PathProvider::Rows(r) => {
                    buf.push(1);
                    r.arena()
                }
            };
            buf.extend_from_slice(&(arena.len() as u64).to_le_bytes());
            for i in 0..arena.len() {
                let (tag, a, b) = arena.wire_node(i);
                buf.push(tag);
                buf.extend_from_slice(&a.to_le_bytes());
                buf.extend_from_slice(&b.to_le_bytes());
            }
            match provider {
                PathProvider::Pairs(s) => {
                    let wits = s.witnesses();
                    buf.extend_from_slice(&(wits.len() as u64).to_le_bytes());
                    for &wit in wits {
                        let (tag, payload) = match wit {
                            PairWitness::None => (0u8, 0u32),
                            PairWitness::Rec { rec, rev: false } => (1, rec.index()),
                            PairWitness::Rec { rec, rev: true } => (2, rec.index()),
                            PairWitness::Via(w) => (3, w),
                        };
                        buf.push(tag);
                        buf.extend_from_slice(&payload.to_le_bytes());
                    }
                }
                PathProvider::Rows(r) => {
                    buf.extend_from_slice(&(r.sources().len() as u64).to_le_bytes());
                    for &s in r.sources() {
                        buf.extend_from_slice(&s.to_le_bytes());
                    }
                    for rec in r.recs() {
                        match rec {
                            None => {
                                buf.push(0);
                                buf.extend_from_slice(&0u32.to_le_bytes());
                            }
                            Some(rec) => {
                                buf.push(1);
                                buf.extend_from_slice(&rec.index().to_le_bytes());
                            }
                        }
                    }
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        w.write_all(&buf)
    }

    /// Reads a snapshot produced by [`PathOracle::save`]. Magic and version
    /// are inspected before the checksum (an unknown version reports
    /// [`SnapshotError::UnsupportedVersion`], never a checksum mismatch);
    /// every count is bounded by the bytes actually present before anything
    /// is allocated, and all record/witness indices are range-checked.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for I/O failures, a wrong magic, an
    /// unsupported version, or a corrupt/truncated payload.
    pub fn load<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let payload = checked_payload(&buf, b"CCRO", 1)?;
        let mut c = Cursor::new(payload);
        let _ = c.take_n::<4>()?; // magic, validated above
        let _ = c.take_n::<2>()?; // version, validated above
        let inner_len = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("inner length exceeds the address space"))?;
        let inner = c.take(inner_len)?;
        let oracle = DistOracle::load(&mut &inner[..])?;
        let n = oracle.n();
        let origin_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
            .map_err(|_| SnapshotError::corrupt("origin count exceeds the address space"))?;
        if origin_count != n * (n + 1) / 2 {
            return Err(SnapshotError::corrupt("origin count does not match n"));
        }
        let origins = c.take(origin_count)?.to_vec();
        let provider_count = u16::from_le_bytes(c.take_n::<2>()?) as usize;
        if provider_count == 0 {
            return Err(SnapshotError::corrupt("no witness providers"));
        }
        if origins.iter().any(|&o| o as usize >= provider_count) {
            return Err(SnapshotError::corrupt("origin beyond provider table"));
        }
        let mut providers = Vec::with_capacity(provider_count);
        for _ in 0..provider_count {
            let kind = c.take_n::<1>()?[0];
            let node_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
                .map_err(|_| SnapshotError::corrupt("node count exceeds the address space"))?;
            if c.remaining() / 9 < node_count {
                return Err(SnapshotError::corrupt("truncated witness arena"));
            }
            let mut arena = RouteArena::new();
            for _ in 0..node_count {
                let tag = c.take_n::<1>()?[0];
                let a = u32::from_le_bytes(c.take_n::<4>()?);
                let b = u32::from_le_bytes(c.take_n::<4>()?);
                arena
                    .push_wire_node(tag, a, b, n)
                    .ok_or_else(|| SnapshotError::corrupt("invalid witness arena node"))?;
            }
            match kind {
                0 => {
                    let wit_count =
                        usize::try_from(u64::from_le_bytes(c.take_n::<8>()?)).map_err(|_| {
                            SnapshotError::corrupt("witness count exceeds the address space")
                        })?;
                    if wit_count != origin_count {
                        return Err(SnapshotError::corrupt("pair witness count mismatch"));
                    }
                    if c.remaining() / 5 < wit_count {
                        return Err(SnapshotError::corrupt("truncated pair witnesses"));
                    }
                    let mut entries = Vec::with_capacity(wit_count);
                    for _ in 0..wit_count {
                        let tag = c.take_n::<1>()?[0];
                        let payload = u32::from_le_bytes(c.take_n::<4>()?);
                        let entry = match tag {
                            0 => PairWitness::None,
                            1 | 2 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt(
                                        "witness record out of range",
                                    ));
                                }
                                PairWitness::Rec {
                                    rec: RecId::from_index(payload),
                                    rev: tag == 2,
                                }
                            }
                            3 => {
                                if payload as usize >= n {
                                    return Err(SnapshotError::corrupt("via witness out of range"));
                                }
                                PairWitness::Via(payload)
                            }
                            _ => return Err(SnapshotError::corrupt("unknown witness tag")),
                        };
                        entries.push(entry);
                    }
                    providers.push(PathProvider::Pairs(Arc::new(PathStore::from_parts(
                        n, arena, entries,
                    ))));
                }
                1 => {
                    let source_count = usize::try_from(u64::from_le_bytes(c.take_n::<8>()?))
                        .map_err(|_| {
                            SnapshotError::corrupt("source count exceeds the address space")
                        })?;
                    if c.remaining() / 4 < source_count {
                        return Err(SnapshotError::corrupt("truncated source list"));
                    }
                    let mut sources = Vec::with_capacity(source_count);
                    for _ in 0..source_count {
                        let s = u32::from_le_bytes(c.take_n::<4>()?);
                        if s as usize >= n {
                            return Err(SnapshotError::corrupt("source out of range"));
                        }
                        sources.push(s);
                    }
                    let cell_count = source_count
                        .checked_mul(n)
                        .ok_or_else(|| SnapshotError::corrupt("row store too large"))?;
                    if c.remaining() / 5 < cell_count {
                        return Err(SnapshotError::corrupt("truncated row witnesses"));
                    }
                    let mut recs = Vec::with_capacity(cell_count);
                    for _ in 0..cell_count {
                        let tag = c.take_n::<1>()?[0];
                        let payload = u32::from_le_bytes(c.take_n::<4>()?);
                        let rec = match tag {
                            0 => None,
                            1 => {
                                if payload as usize >= arena.len() {
                                    return Err(SnapshotError::corrupt("row record out of range"));
                                }
                                Some(RecId::from_index(payload))
                            }
                            _ => return Err(SnapshotError::corrupt("unknown row witness tag")),
                        };
                        recs.push(rec);
                    }
                    providers.push(PathProvider::Rows(Arc::new(RowStore::from_parts(
                        n, sources, arena, recs,
                    ))));
                }
                _ => return Err(SnapshotError::corrupt("unknown provider kind")),
            }
        }
        if !c.at_end() {
            return Err(SnapshotError::corrupt("trailing bytes after payload"));
        }
        Ok(PathOracle {
            oracle,
            origins,
            providers,
        })
    }

    /// [`PathOracle::save`] to a filesystem path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.save(&mut f)
    }

    /// [`PathOracle::load`] from a filesystem path.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`PathOracle::load`] does.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let mut f = std::fs::File::open(path)?;
        Self::load(&mut f)
    }
}

impl PartialEq for PathOracle {
    fn eq(&self, other: &Self) -> bool {
        if self.oracle != other.oracle || self.origins != other.origins {
            return false;
        }
        if self.providers.len() != other.providers.len() {
            return false;
        }
        self.providers
            .iter()
            .zip(&other.providers)
            .all(|(a, b)| match (a, b) {
                (PathProvider::Pairs(x), PathProvider::Pairs(y)) => {
                    x.arena() == y.arena() && x.witnesses() == y.witnesses()
                }
                (PathProvider::Rows(x), PathProvider::Rows(y)) => {
                    x.arena() == y.arena() && x.sources() == y.sources() && x.recs() == y.recs()
                }
                _ => false,
            })
    }
}

/// Emits a row-store walk for the ordered pair `(u, v)` where one endpoint
/// is a source: the **shortest recorded walk** over every row covering the
/// pair (first row on ties). Selecting by walk length — not by the mirrored
/// estimate values, which snapshots do not persist — keeps loaded oracles
/// byte-for-byte equivalent to the ones that were saved, and the winner is
/// never heavier than the frozen estimate (some covering row realized it,
/// and that row's walk is at most its value).
fn emit_row_pair(r: &RowStore, u: usize, v: usize) -> Option<Vec<(u32, u32)>> {
    let n = r.n();
    let mut best: Option<(u32, usize, bool)> = None; // (walk len, row, reversed)
    for (i, &s) in r.sources().iter().enumerate() {
        for (from, to, reversed) in [(u, v, false), (v, u, true)] {
            if s as usize != from {
                continue;
            }
            if let Some(rec) = r.recs()[i * n + to] {
                let len = r.arena().len_of(rec);
                if best.is_none_or(|b| len < b.0) {
                    best = Some((len, i, reversed));
                }
            }
        }
    }
    let (_, i, reversed) = best?;
    let mut edges = r.emit(i, if reversed { u } else { v })?;
    if reversed {
        edges.reverse();
        for e in &mut edges {
            *e = (e.1, e.0);
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::Graph;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn tiny_oracle() -> PathOracle {
        // Hand-built: a 4-path with a pair store for all pairs.
        let g = path_graph(4);
        let mut store = PathStore::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                let verts: Vec<u32> = (u as u32..=v as u32).collect();
                store.offer_walk(&g, (v - u) as Dist, &verts);
            }
        }
        let mut m = crate::estimates::DistanceMatrix::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    m.improve(u, v, u.abs_diff(v) as Dist);
                }
            }
        }
        let oracle = DistOracle::from_matrix(
            &m,
            Guarantee::mult2(0.5),
            cc_graphs::StorageKind::SymmetricPacked,
        );
        PathOracle::new(
            oracle,
            vec![0; 10],
            vec![PathProvider::Pairs(Arc::new(store))],
        )
    }

    #[test]
    fn paths_are_served_with_guarantees() {
        let o = tiny_oracle();
        let route = o.path(0, 3).expect("connected");
        assert_eq!(route.edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(route.weight, 3);
        assert_eq!(route.vertices(), vec![0, 1, 2, 3]);
        assert_eq!(route.guarantee, o.dist(0, 3).unwrap().guarantee);
        let back = o.path(3, 0).unwrap();
        assert_eq!(back.edges, vec![(3, 2), (2, 1), (1, 0)]);
        let diag = o.path(2, 2).unwrap();
        assert_eq!((diag.weight, diag.edges.len()), (0, 0));
        assert_eq!(o.path(0, 9), None, "out of range");
        let batch = o.path_batch(&[(0, 3), (2, 2)]);
        assert_eq!(batch[0].as_ref().unwrap().weight, 3);
        assert!(o.witness_bytes() > 0);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_bad_frames() {
        let o = tiny_oracle();
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let back = PathOracle::load(&mut &buf[..]).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.path(1, 3), o.path(1, 3));
        let mut again = Vec::new();
        back.save(&mut again).unwrap();
        assert_eq!(buf, again, "re-save must be byte-identical");

        // Unknown version wins over the (now unverifiable) checksum.
        let mut future = Vec::new();
        future.extend_from_slice(b"CCRO");
        future.extend_from_slice(&9u16.to_le_bytes());
        future.extend_from_slice(&[0; 16]);
        assert!(matches!(
            PathOracle::load(&mut &future[..]),
            Err(SnapshotError::UnsupportedVersion(9))
        ));
        // Bad magic, flipped byte, truncation.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            PathOracle::load(&mut &bad[..]),
            Err(SnapshotError::BadMagic(_))
        ));
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(PathOracle::load(&mut &flipped[..]).is_err());
        assert!(PathOracle::load(&mut &buf[..buf.len() - 3]).is_err());
    }
}
