//! Snapshot persistence shared by the `CCDO` ([`crate::DistOracle`]) and
//! `CCRO` ([`crate::PathOracle`]) formats.
//!
//! Two format versions coexist:
//!
//! * **v1** — the original streaming format: a packed little-endian byte
//!   sequence, decoded field by field into freshly allocated tables.
//!   Compact and portable; every load pays a full deserialization pass.
//! * **v2** — the serving format: the same logical content laid out as
//!   **64-byte-aligned POD sections** behind a section directory, with the
//!   same `magic / version u16 / … / trailing FNV-1a u64` frame as v1. The
//!   hot tables (distance entries, provenance tags, route-arena columns,
//!   origins, sources) are directly addressable from a mapped file: loading
//!   builds [`cc_graphs::SharedSlice`] views into the snapshot bytes
//!   instead of copying them (little-endian targets; elsewhere the loader
//!   transparently decode-copies).
//!
//! [`header`] holds the frame plumbing both versions and both formats
//! share — magic/version inspection, the trailing checksum, the
//! bounds-checked cursor, [`SnapshotError`]. The `v2` module holds the
//! section writer and the validated section view. The per-format
//! field layouts live with their types (`oracle.rs`, `path_oracle.rs`);
//! `DESIGN.md` §9 documents the v2 layout and alignment rules.

pub mod atomic;
pub mod header;
pub(crate) mod v2;

pub use atomic::write_atomic;
pub use header::SnapshotError;
pub use v2::SnapshotView;

/// Identifies a snapshot byte stream without parsing it: `(magic, version)`
/// from the 6-byte prefix shared by every CCDO/CCRO version. The caller
/// decides whether the pair is one it understands; this only fails on
/// streams too short to carry a header.
///
/// # Errors
///
/// Returns [`SnapshotError::Corrupt`] when fewer than 6 bytes are present.
pub fn sniff(bytes: &[u8]) -> Result<([u8; 4], u16), SnapshotError> {
    let Some((magic, rest)) = bytes.split_first_chunk::<4>() else {
        return Err(SnapshotError::corrupt("shorter than magic + version"));
    };
    let Some((version_bytes, _)) = rest.split_first_chunk::<2>() else {
        return Err(SnapshotError::corrupt("shorter than magic + version"));
    };
    Ok((*magic, u16::from_le_bytes(*version_bytes)))
}
