//! Snapshot format v2: aligned POD sections behind a section directory.
//!
//! Frame (shared with v1 — see [`super::header`]):
//!
//! ```text
//!   off  0  magic            4 bytes
//!   off  4  version  u16 = 2
//!   off  6  reserved u16 = 0
//!   off  8  dir_off  u64          absolute offset of the directory
//!   off 64  sections…             each starting at a 64-byte-aligned offset
//!   dir_off section_count u32, reserved u32,
//!           count × { id u16, reserved u16, reserved u32,
//!                     byte_off u64, byte_len u64 }        (24 bytes each)
//!   tail    checksum u64          FNV-1a over every preceding byte
//! ```
//!
//! Alignment rules: every section starts at a multiple of 64 **relative to
//! the snapshot's own first byte**, and embedded snapshots (the CCDO inside
//! a CCRO) are themselves sections, so their inner offsets stay 64-aligned
//! absolutely. Owners hand out at-least-8-aligned base pointers
//! ([`AlignedBytes`] by construction, `mmap` by page alignment), so every
//! `u8`/`u32`/`u64` section is in-place addressable. [`SnapshotView`] still
//! validates each view's bounds and alignment before sharing and falls back
//! to a decode-copy — a hostile directory can force a copy, never unsafety.

use std::sync::Arc;

use cc_graphs::{AlignedBytes, ByteOwner, DirEntry, PodData, Section, SharedSlice};

use super::header::{checked_frame, fnv1a, SnapshotError};

/// Section alignment: every section starts at a multiple of this, relative
/// to the snapshot's first byte. Re-exported from `cc_graphs::pod`, where
/// the [`Section`] layout assertions check against it.
pub(crate) const ALIGN: usize = cc_graphs::SECTION_ALIGN;

/// Cap on the section count a directory may declare, far above what any
/// real snapshot uses (a 256-provider CCRO needs ~1.8k): bounds the one
/// allocation made while parsing a directory. The writer enforces the same
/// cap, so everything a writer produces parses back.
pub(crate) const MAX_SECTIONS: usize = 4096;

/// `N` little-endian bytes at `off` within `buf`, as a typed error instead
/// of a panic when the range is unrepresentable or out of bounds.
fn le_chunk<const N: usize>(buf: &[u8], off: usize, what: &str) -> Result<[u8; N], SnapshotError> {
    off.checked_add(N)
        .and_then(|end| buf.get(off..end))
        .and_then(|s| s.first_chunk::<N>())
        .copied()
        .ok_or_else(|| SnapshotError::Corrupt(format!("{what} out of bounds")))
}

/// Builds a v2 snapshot: appends sections at 64-aligned offsets, then
/// writes the directory and the trailing checksum.
pub(crate) struct SectionWriter {
    buf: Vec<u8>,
    dir: Vec<(u16, u64, u64)>,
}

impl SectionWriter {
    pub(crate) fn new(magic: &[u8; 4]) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // dir_off, patched in finish
        SectionWriter {
            buf,
            dir: Vec::new(),
        }
    }

    /// Appends a section, padding the stream so it starts 64-aligned.
    pub(crate) fn section(&mut self, id: u16, bytes: &[u8]) {
        let aligned = self.buf.len().next_multiple_of(ALIGN);
        self.buf.resize(aligned, 0);
        self.dir.push((id, aligned as u64, bytes.len() as u64));
        self.buf.extend_from_slice(bytes);
    }

    /// A section of `u32` values, serialized little-endian.
    pub(crate) fn section_u32(&mut self, id: u16, values: &[u32]) {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for &v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.section(id, &bytes);
    }

    /// Writes the directory and checksum; returns the finished snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when more than [`MAX_SECTIONS`] sections
    /// were appended — the checked twin of the `as u32` narrowing this
    /// count used to go through.
    pub(crate) fn finish(mut self) -> Result<Vec<u8>, SnapshotError> {
        SnapshotError::check_count("section count", self.dir.len(), MAX_SECTIONS)?;
        let count = u32::try_from(self.dir.len())
            .map_err(|_| SnapshotError::corrupt("section count exceeds u32"))?;
        let aligned = self.buf.len().next_multiple_of(8);
        self.buf.resize(aligned, 0);
        let dir_off = self.buf.len() as u64;
        self.buf
            .get_mut(8..16)
            .ok_or_else(|| SnapshotError::corrupt("writer lost its header"))?
            .copy_from_slice(&dir_off.to_le_bytes());
        self.buf.extend_from_slice(&count.to_le_bytes());
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        for &(id, off, len) in &self.dir {
            self.buf.extend_from_slice(&id.to_le_bytes());
            self.buf.extend_from_slice(&0u16.to_le_bytes());
            self.buf.extend_from_slice(&0u32.to_le_bytes());
            self.buf.extend_from_slice(&off.to_le_bytes());
            self.buf.extend_from_slice(&len.to_le_bytes());
        }
        let checksum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        Ok(self.buf)
    }
}

/// A validated window onto one v2 snapshot inside a [`ByteOwner`] — the
/// whole owner for a top-level snapshot, a sub-range for an embedded one.
///
/// Parsing checks the frame (magic, version, checksum) and the directory
/// (in-bounds, 64-aligned, deduplicated section ids) up front; afterwards
/// sections are served as zero-copy [`PodData`] views on little-endian
/// targets and as decode-copies elsewhere.
#[derive(Debug)]
pub struct SnapshotView {
    owner: Arc<dyn ByteOwner>,
    /// Byte offset of this snapshot's first byte within `owner`.
    base: usize,
    /// Snapshot length including frame and checksum.
    len: usize,
    /// `(id, offset relative to base, byte length)`, directory order.
    sections: Vec<(u16, usize, usize)>,
}

impl SnapshotView {
    /// Parses the owner's entire allocation as one v2 snapshot.
    ///
    /// # Errors
    ///
    /// Any frame or directory violation, as a typed [`SnapshotError`] —
    /// nothing beyond the (capped) directory table is allocated first.
    pub fn parse(owner: Arc<dyn ByteOwner>, magic: &[u8; 4]) -> Result<Self, SnapshotError> {
        let len = owner.bytes().len();
        SnapshotView::parse_at(owner, 0, len, magic)
    }

    /// Parses the `len` bytes starting at `base` within `owner` as one v2
    /// snapshot (embedded-snapshot support).
    pub(crate) fn parse_at(
        owner: Arc<dyn ByteOwner>,
        base: usize,
        len: usize,
        magic: &[u8; 4],
    ) -> Result<Self, SnapshotError> {
        let all = owner.bytes();
        let end = base
            .checked_add(len)
            .filter(|&e| e <= all.len())
            .ok_or_else(|| SnapshotError::corrupt("snapshot window out of bounds"))?;
        let bytes = all
            .get(base..end)
            .ok_or_else(|| SnapshotError::corrupt("snapshot window out of bounds"))?;
        let (_, payload) = checked_frame(bytes, magic, &[2])?;
        if payload.len() < 16 {
            return Err(SnapshotError::corrupt("v2 header truncated"));
        }
        let dir_off = usize::try_from(u64::from_le_bytes(le_chunk::<8>(payload, 8, "dir_off")?))
            .map_err(|_| SnapshotError::corrupt("directory offset exceeds the address space"))?;
        if dir_off % 8 != 0
            || dir_off < 16
            || dir_off.checked_add(8).is_none_or(|e| e > payload.len())
        {
            return Err(SnapshotError::corrupt("directory offset out of bounds"));
        }
        let count = u32::from_le_bytes(le_chunk::<4>(payload, dir_off, "section count")?) as usize;
        if count > MAX_SECTIONS {
            return Err(SnapshotError::corrupt("section count out of range"));
        }
        let dir_body = dir_off
            .checked_add(8)
            .ok_or_else(|| SnapshotError::corrupt("directory offset out of bounds"))?;
        if count
            .checked_mul(DirEntry::WIRE_SIZE)
            .and_then(|l| dir_body.checked_add(l))
            != Some(payload.len())
        {
            return Err(SnapshotError::corrupt(
                "directory does not span the payload tail",
            ));
        }

        // Directory entries, raw: the mapped-file fast path reinterprets
        // the (8-aligned) entry table as `DirEntry` rows in place; any
        // misalignment or a big-endian target falls back to a field-wise
        // decode of the same bytes.
        let mut raw_entries: Vec<(u16, u64, u64)> = Vec::with_capacity(count);
        let typed = if cfg!(target_endian = "little") {
            SharedSlice::<DirEntry>::new(Arc::clone(&owner), base + dir_body, count)
        } else {
            None
        };
        match typed {
            Some(view) => {
                for e in view.as_slice() {
                    raw_entries.push((e.id, e.byte_off, e.byte_len));
                }
            }
            None => {
                for i in 0..count {
                    let eoff = dir_body + DirEntry::WIRE_SIZE * i;
                    let id = u16::from_le_bytes(le_chunk::<2>(payload, eoff, "section id")?);
                    let off =
                        u64::from_le_bytes(le_chunk::<8>(payload, eoff + 8, "section offset")?);
                    let slen =
                        u64::from_le_bytes(le_chunk::<8>(payload, eoff + 16, "section length")?);
                    raw_entries.push((id, off, slen));
                }
            }
        }

        let mut sections = Vec::with_capacity(count);
        for (id, off64, len64) in raw_entries {
            let off = usize::try_from(off64)
                .map_err(|_| SnapshotError::corrupt("section offset exceeds the address space"))?;
            let slen = usize::try_from(len64)
                .map_err(|_| SnapshotError::corrupt("section length exceeds the address space"))?;
            if off % ALIGN != 0 {
                return Err(SnapshotError::corrupt("section offset not 64-aligned"));
            }
            if off.checked_add(slen).is_none_or(|e| e > dir_off) {
                return Err(SnapshotError::corrupt("section out of bounds"));
            }
            if sections.iter().any(|&(other, _, _)| other == id) {
                return Err(SnapshotError::corrupt("duplicate section id"));
            }
            sections.push((id, off, slen));
        }
        Ok(SnapshotView {
            owner,
            base,
            len,
            sections,
        })
    }

    /// The snapshot's own bytes (frame and checksum included).
    pub(crate) fn raw(&self) -> &[u8] {
        // The window was validated against the owner in `parse_at`, and the
        // ByteOwner contract (stable pointer and length) keeps it valid;
        // an empty slice would only surface a broken owner, loudly, as
        // section-out-of-bounds errors downstream.
        self.owner
            .bytes()
            .get(self.base..self.base + self.len)
            .unwrap_or(&[])
    }

    /// `len` section bytes starting `off` into the snapshot, re-validated
    /// against the raw window (parse-time checks make failure unreachable).
    fn slice_at(&self, off: usize, len: usize) -> Result<&[u8], SnapshotError> {
        off.checked_add(len)
            .and_then(|end| self.raw().get(off..end))
            .ok_or_else(|| SnapshotError::corrupt("section window out of bounds"))
    }

    /// `(relative offset, byte length)` of section `id`, if present.
    fn find(&self, id: u16) -> Option<(usize, usize)> {
        self.sections
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .map(|&(_, off, len)| (off, len))
    }

    /// `true` when section `id` is present.
    pub fn has(&self, id: u16) -> bool {
        self.find(id).is_some()
    }

    /// The directory, in file order: `(section id, byte offset relative to
    /// the snapshot start, byte length)` — the raw map tools like
    /// `ccd snapshot info` report.
    pub fn directory(&self) -> impl Iterator<Item = (u16, usize, usize)> + '_ {
        self.sections.iter().copied()
    }

    /// The raw bytes of a required section.
    pub(crate) fn bytes_of(&self, id: u16, what: &str) -> Result<&[u8], SnapshotError> {
        let (off, len) = self
            .find(id)
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing {what} section")))?;
        self.slice_at(off, len)
    }

    /// A `u8` section of exactly `count` elements, served zero-copy.
    pub(crate) fn u8_data(
        &self,
        id: u16,
        count: usize,
        what: &str,
    ) -> Result<PodData<u8>, SnapshotError> {
        let (off, len) = self
            .find(id)
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing {what} section")))?;
        if len != count {
            return Err(SnapshotError::Corrupt(format!(
                "{what} section length mismatch"
            )));
        }
        match SharedSlice::<u8>::new(Arc::clone(&self.owner), self.base + off, count) {
            Some(s) => Ok(s.into()),
            None => Ok(self.slice_at(off, len)?.to_vec().into()),
        }
    }

    /// A little-endian `u32` section of exactly `count` elements — a
    /// zero-copy view on little-endian targets (decode-copy otherwise, or
    /// when the mapping is misaligned).
    pub(crate) fn u32_data(
        &self,
        id: u16,
        count: usize,
        what: &str,
    ) -> Result<PodData<u32>, SnapshotError> {
        let (off, len) = self
            .find(id)
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing {what} section")))?;
        if count.checked_mul(4) != Some(len) {
            return Err(SnapshotError::Corrupt(format!(
                "{what} section length mismatch"
            )));
        }
        if cfg!(target_endian = "little") {
            if let Some(s) =
                SharedSlice::<u32>::new(Arc::clone(&self.owner), self.base + off, count)
            {
                return Ok(s.into());
            }
        }
        let bytes = self.slice_at(off, len)?;
        let (chunks, _) = bytes.as_chunks::<4>();
        let mut out = Vec::with_capacity(count);
        for chunk in chunks {
            out.push(u32::from_le_bytes(*chunk));
        }
        Ok(out.into())
    }

    /// Parses section `id` as an embedded v2 snapshot with its own frame.
    pub(crate) fn sub_view(
        &self,
        id: u16,
        magic: &[u8; 4],
        what: &str,
    ) -> Result<SnapshotView, SnapshotError> {
        let (off, len) = self
            .find(id)
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing {what} section")))?;
        SnapshotView::parse_at(Arc::clone(&self.owner), self.base + off, len, magic)
    }
}

/// Reads a whole stream into an [`AlignedBytes`] owner — the v2 load path
/// for non-mapped sources (pipes, in-memory buffers, tests).
pub(crate) fn owner_from_bytes(bytes: &[u8]) -> Arc<dyn ByteOwner> {
    Arc::new(AlignedBytes::copy_from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_aligned_sections_and_view_reads_them_back() {
        let mut w = SectionWriter::new(b"CCDO");
        w.section(1, &[1, 2, 3]);
        w.section_u32(4, &[10, 20, 30]);
        w.section(5, &[]);
        let bytes = w.finish().expect("finish");
        let view = SnapshotView::parse(owner_from_bytes(&bytes), b"CCDO").expect("valid");
        assert_eq!(view.bytes_of(1, "meta").unwrap(), &[1, 2, 3]);
        assert_eq!(&view.u32_data(4, 3, "entries").unwrap()[..], &[10, 20, 30]);
        assert_eq!(view.u8_data(5, 0, "tags").unwrap().len(), 0);
        assert!(view.has(5));
        assert!(!view.has(9));
        assert!(view.bytes_of(9, "nope").is_err());
        if cfg!(target_endian = "little") {
            assert!(view.u32_data(4, 3, "entries").unwrap().is_shared());
        }
    }

    #[test]
    fn view_rejects_frame_and_directory_corruption() {
        let mut w = SectionWriter::new(b"CCDO");
        w.section_u32(4, &[1, 2]);
        let bytes = w.finish().expect("finish");

        let wrong = SnapshotView::parse(owner_from_bytes(&bytes), b"CCRO");
        assert!(matches!(wrong, Err(SnapshotError::BadMagic(_))));

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            SnapshotView::parse(owner_from_bytes(&flipped), b"CCDO"),
            Err(SnapshotError::Corrupt(_))
        ));

        let truncated = &bytes[..bytes.len() - 3];
        assert!(SnapshotView::parse(owner_from_bytes(truncated), b"CCDO").is_err());

        // Misaligned section offset (patch the directory entry, re-seal).
        let mut crooked = bytes.clone();
        crooked.truncate(crooked.len() - 8);
        let dir_off = u64::from_le_bytes(crooked[8..16].try_into().unwrap()) as usize;
        // byte_off of entry 0: 8-byte directory header, then 8 bytes of
        // id + padding inside the entry.
        crooked[dir_off + 16..dir_off + 24].copy_from_slice(&63u64.to_le_bytes());
        let checksum = fnv1a(&crooked);
        crooked.extend_from_slice(&checksum.to_le_bytes());
        let err = SnapshotView::parse(owner_from_bytes(&crooked), b"CCDO").unwrap_err();
        assert!(err.to_string().contains("not 64-aligned"), "{err}");
    }

    #[test]
    fn section_length_mismatches_are_typed_errors() {
        let mut w = SectionWriter::new(b"CCDO");
        w.section_u32(4, &[1, 2, 3]);
        let bytes = w.finish().expect("finish");
        let view = SnapshotView::parse(owner_from_bytes(&bytes), b"CCDO").unwrap();
        assert!(view.u32_data(4, 2, "entries").is_err(), "count mismatch");
        assert!(view.u8_data(4, 3, "entries").is_err(), "u8 over 12 bytes");
    }
}
