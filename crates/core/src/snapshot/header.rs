//! The snapshot frame: magic, version, trailing checksum, typed errors.
//!
//! Every snapshot this workspace writes — `CCDO` v1/v2, `CCRO` v1/v2 —
//! shares one frame shape:
//!
//! ```text
//!   magic     4 bytes   (b"CCDO" or b"CCRO")
//!   version   u16 LE
//!   …body…
//!   checksum  u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! `checked_frame` validates that frame in the only safe order: magic
//! first, then version, then the checksum. A snapshot written by a future
//! format version (whose trailing bytes this build cannot even locate)
//! reports [`SnapshotError::UnsupportedVersion`], never a misleading
//! checksum mismatch. The CCDO and CCRO readers — and both format
//! versions — go through this one implementation.

/// Validates a snapshot frame — magic, then version against the supported
/// set, then the trailing FNV-1a checksum — and returns the accepted
/// version plus the checksummed payload (everything before the 8-byte
/// tail).
///
/// # Errors
///
/// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`], or
/// [`SnapshotError::Corrupt`] on truncation / checksum mismatch.
pub(crate) fn checked_frame<'a>(
    buf: &'a [u8],
    magic: &[u8; 4],
    supported: &[u16],
) -> Result<(u16, &'a [u8]), SnapshotError> {
    // Magic and version live in the first 6 bytes and are validated before
    // the checksum, so future-version snapshots fail with the actionable
    // error even though this build cannot verify their integrity.
    if buf.len() < 6 {
        return Err(SnapshotError::corrupt("shorter than magic + version"));
    }
    let got: [u8; 4] = buf[..4].try_into().expect("4-byte magic");
    if &got != magic {
        return Err(SnapshotError::BadMagic(got));
    }
    let got_version = u16::from_le_bytes(buf[4..6].try_into().expect("2-byte version"));
    if !supported.contains(&got_version) {
        return Err(SnapshotError::UnsupportedVersion(got_version));
    }
    if buf.len() < 14 {
        return Err(SnapshotError::corrupt("shorter than header + checksum"));
    }
    let (payload, tail) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(payload) != stored {
        return Err(SnapshotError::corrupt("checksum mismatch"));
    }
    Ok((got_version, payload))
}

/// [`checked_frame`] for a single supported version.
pub(crate) fn checked_payload<'a>(
    buf: &'a [u8],
    magic: &[u8; 4],
    version: u16,
) -> Result<&'a [u8], SnapshotError> {
    checked_frame(buf, magic, &[version]).map(|(_, payload)| payload)
}

/// FNV-1a over a byte slice (the snapshot checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Bounds-checked reader over a snapshot payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::corrupt("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn take_n<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        Ok(self.take(N)?.try_into().expect("length checked"))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Errors reading or writing oracle snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the expected magic.
    BadMagic([u8; 4]),
    /// A version this build does not understand.
    UnsupportedVersion(u16),
    /// Structurally invalid or truncated payload (detail in the message).
    Corrupt(String),
}

impl SnapshotError {
    pub(crate) fn corrupt(msg: &str) -> Self {
        SnapshotError::Corrupt(msg.to_string())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic(m) => write!(f, "not an oracle snapshot (magic {m:02x?})"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
