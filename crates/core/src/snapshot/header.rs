//! The snapshot frame: magic, version, trailing checksum, typed errors.
//!
//! Every snapshot this workspace writes — `CCDO` v1/v2, `CCRO` v1/v2 —
//! shares one frame shape:
//!
//! ```text
//!   magic     4 bytes   (b"CCDO" or b"CCRO")
//!   version   u16 LE
//!   …body…
//!   checksum  u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! `checked_frame` validates that frame in the only safe order: magic
//! first, then version, then the checksum. A snapshot written by a future
//! format version (whose trailing bytes this build cannot even locate)
//! reports [`SnapshotError::UnsupportedVersion`], never a misleading
//! checksum mismatch. The CCDO and CCRO readers — and both format
//! versions — go through this one implementation.

/// Validates a snapshot frame — magic, then version against the supported
/// set, then the trailing FNV-1a checksum — and returns the accepted
/// version plus the checksummed payload (everything before the 8-byte
/// tail).
///
/// # Errors
///
/// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`], or
/// [`SnapshotError::Corrupt`] on truncation / checksum mismatch.
pub(crate) fn checked_frame<'a>(
    buf: &'a [u8],
    magic: &[u8; 4],
    supported: &[u16],
) -> Result<(u16, &'a [u8]), SnapshotError> {
    // Magic and version live in the first 6 bytes and are validated before
    // the checksum, so future-version snapshots fail with the actionable
    // error even though this build cannot verify their integrity.
    let Some((got, after_magic)) = buf.split_first_chunk::<4>() else {
        return Err(SnapshotError::corrupt("shorter than magic + version"));
    };
    if got != magic {
        return Err(SnapshotError::BadMagic(*got));
    }
    let Some((version_bytes, _)) = after_magic.split_first_chunk::<2>() else {
        return Err(SnapshotError::corrupt("shorter than magic + version"));
    };
    let got_version = u16::from_le_bytes(*version_bytes);
    if !supported.contains(&got_version) {
        return Err(SnapshotError::UnsupportedVersion(got_version));
    }
    if buf.len() < 14 {
        return Err(SnapshotError::corrupt("shorter than header + checksum"));
    }
    let Some((payload, tail)) = buf.split_last_chunk::<8>() else {
        return Err(SnapshotError::corrupt("shorter than header + checksum"));
    };
    let stored = u64::from_le_bytes(*tail);
    if fnv1a(payload) != stored {
        return Err(SnapshotError::corrupt("checksum mismatch"));
    }
    Ok((got_version, payload))
}

/// [`checked_frame`] for a single supported version.
pub(crate) fn checked_payload<'a>(
    buf: &'a [u8],
    magic: &[u8; 4],
    version: u16,
) -> Result<&'a [u8], SnapshotError> {
    checked_frame(buf, magic, &[version]).map(|(_, payload)| payload)
}

/// FNV-1a over a byte slice (the snapshot checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Bounds-checked reader over a snapshot payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::corrupt("truncated payload"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| SnapshotError::corrupt("truncated payload"))?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn take_n<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        self.take(N)?
            .first_chunk::<N>()
            .copied()
            .ok_or_else(|| SnapshotError::corrupt("truncated payload"))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Errors reading or writing oracle snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the expected magic.
    BadMagic([u8; 4]),
    /// A version this build does not understand.
    UnsupportedVersion(u16),
    /// Structurally invalid or truncated payload (detail in the message).
    Corrupt(String),
    /// A table being **written** exceeds what the format can represent —
    /// the writer-side twin of [`SnapshotError::Corrupt`]. Surfacing this
    /// instead of narrowing with `as` keeps an oversized table from being
    /// silently truncated into a snapshot that loads as the wrong oracle.
    TooLarge {
        /// Which table or field overflowed.
        what: &'static str,
        /// The value the caller tried to write.
        count: usize,
        /// The format's inclusive maximum for that field.
        max: usize,
    },
}

impl SnapshotError {
    pub(crate) fn corrupt(msg: &str) -> Self {
        SnapshotError::Corrupt(msg.to_string())
    }

    /// Checks a writer-side count against the format's maximum for `what`.
    pub(crate) fn check_count(what: &'static str, count: usize, max: usize) -> Result<(), Self> {
        if count > max {
            Err(SnapshotError::TooLarge { what, count, max })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic(m) => write!(f, "not an oracle snapshot (magic {m:02x?})"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::TooLarge { what, count, max } => {
                write!(
                    f,
                    "snapshot {what} too large: {count} exceeds the format maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotError> for std::io::Error {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
