//! Crash-safe snapshot writes: temp file → fsync → atomic rename →
//! directory sync.
//!
//! A snapshot written in place (`File::create` + `write_all`) has a torn
//! window: a crash mid-write leaves a file with a valid-looking prefix and
//! no trailing checksum, and — worse — destroys the previous good snapshot
//! the moment `create` truncates it. [`write_atomic`] closes both holes:
//! the bytes land in a same-directory temp file, are fsync'd, and only
//! then atomically renamed over the destination, so any observer (a
//! concurrent `ccd` reload, a crash-recovery boot) sees either the old
//! complete file or the new complete file, never a prefix. On Unix the
//! parent directory is fsync'd after the rename so the *name* survives a
//! power cut too.
//!
//! Every `save_to_path` / `save_v2_to_path` writer routes through here;
//! the trailing FNV-1a checksum ([`super::header`]) remains the
//! second line of defense for torn files produced by other tools.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The temp-file sibling `write_atomic` stages into: same directory (so
/// the rename cannot cross filesystems), name derived from the target.
fn temp_sibling(path: &Path) -> std::io::Result<PathBuf> {
    let Some(name) = path.file_name() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "atomic write target has no file name",
        ));
    };
    let mut tmp_name = name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    Ok(path.with_file_name(tmp_name))
}

/// Fsyncs the directory holding `path`, so the rename that just happened
/// is durable. Unix-only (directories cannot be opened for sync
/// elsewhere); a filesystem that refuses the open (some network mounts)
/// degrades to rename-without-dir-sync rather than failing the save.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        if let Ok(handle) = File::open(dir) {
            handle.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// Writes `bytes` to `path` crash-safely: temp sibling → `write_all` →
/// `sync_all` → atomic `rename` → parent-directory sync. On any failure
/// the temp file is removed (best effort) and the previous contents of
/// `path`, if any, are untouched.
///
/// # Errors
///
/// Propagates the first I/O failure from the staging write, the fsync,
/// the rename, or the directory sync.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = temp_sibling(path)?;
    let staged = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if staged.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    staged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cc_atomic_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_and_leave_no_temp_behind() {
        let dir = scratch_dir("ok");
        let path = dir.join("snap.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Overwrite replaces the content wholesale.
        write_atomic(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging files must not survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_writes_leave_the_old_file_intact() {
        let dir = scratch_dir("fail");
        let path = dir.join("keep.bin");
        write_atomic(&path, b"precious").unwrap();
        // A target whose parent does not exist fails before any rename.
        let bad = dir.join("no-such-subdir").join("x.bin");
        assert!(write_atomic(&bad, b"doomed").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious");
        std::fs::remove_dir_all(&dir).ok();
    }
}
