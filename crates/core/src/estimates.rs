//! Distance-estimate matrices shared by the APSP algorithms.

use cc_graphs::{dadd, Dist, INF};

/// A symmetric `n × n` matrix of distance estimates, initialized to ∞ with a
/// zero diagonal. All updates keep the minimum (estimates only improve) and
/// are applied symmetrically — the algorithms of the paper all produce
/// symmetric estimates on undirected inputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DistanceMatrix {
    /// Fresh matrix: ∞ everywhere, 0 on the diagonal.
    pub fn new(n: usize) -> Self {
        let mut data = vec![INF; n * n];
        for i in 0..n {
            data[i * n + i] = 0;
        }
        DistanceMatrix { n, data }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current estimate `δ(u, v)`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> Dist {
        self.data[u * self.n + v]
    }

    /// Borrows the full row of `u` (`row(u)[v] = δ(u, v)`). By symmetry this
    /// is also the column of `u`, so callers that previously walked
    /// `get(u, 0..n)` — or materialized both orientations — can iterate one
    /// contiguous slice instead.
    #[inline]
    pub fn row(&self, u: usize) -> &[Dist] {
        &self.data[u * self.n..(u + 1) * self.n]
    }

    /// Debug-build check that the symmetric-write invariant held up. All
    /// mutations go through [`DistanceMatrix::improve`]/merge, which write
    /// both orientations; this micro-assert catches any future fast path
    /// that forgets one. Compiled out of release builds.
    #[inline]
    fn debug_assert_symmetric(&self) {
        #[cfg(debug_assertions)]
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                debug_assert_eq!(
                    self.data[u * self.n + v],
                    self.data[v * self.n + u],
                    "symmetry broken at ({u},{v})"
                );
            }
        }
    }

    /// Lowers `δ(u,v)` (and `δ(v,u)`) to `min(current, value)`.
    #[inline]
    pub fn improve(&mut self, u: usize, v: usize, value: Dist) {
        let n = self.n;
        if value < self.data[u * n + v] {
            self.data[u * n + v] = value;
            self.data[v * n + u] = value;
        }
    }

    /// Lowers `δ(u,v)` with the sum `a + b` (saturating).
    #[inline]
    pub fn improve_via(&mut self, u: usize, v: usize, a: Dist, b: Dist) {
        self.improve(u, v, dadd(a, b));
    }

    /// Merges another matrix pointwise. Both operands are symmetric, so the
    /// element-wise pass needs no per-entry branch or mirrored second write:
    /// `min` compiles to branch-free selects over the flat arrays.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: &DistanceMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = (*a).min(b);
        }
        self.debug_assert_symmetric();
    }

    /// Merges a dense `Vec<Vec<Dist>>` (e.g. the output of
    /// `distance_through_sets`), symmetrizing via the min of both
    /// orientations.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from `n`.
    pub fn merge_rows(&mut self, rows: &[Vec<Dist>]) {
        assert_eq!(rows.len(), self.n, "dimension mismatch");
        for (u, row) in rows.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                if u != v && d < INF {
                    self.improve(u, v, d);
                }
            }
        }
        self.debug_assert_symmetric();
    }

    /// Number of finite off-diagonal (ordered) entries.
    pub fn finite_pairs(&self) -> usize {
        let mut count = 0;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v && self.get(u, v) < INF {
                    count += 1;
                }
            }
        }
        count
    }

    /// View as closure for the stretch evaluator.
    pub fn as_fn(&self) -> impl Fn(usize, usize) -> Dist + '_ {
        move |u, v| self.get(u, v)
    }

    /// Dense row copies (`rows[u][v] = δ(u,v)`), the common currency of the
    /// [`crate::Algorithm`] interface.
    pub fn to_rows(&self) -> Vec<Vec<Dist>> {
        (0..self.n).map(|u| self.row(u).to_vec()).collect()
    }

    /// The flat row-major entry array (the `Full` freeze layout).
    pub fn to_flat(&self) -> Vec<Dist> {
        self.data.clone()
    }

    /// The packed upper triangle, diagonal included (the `SymmetricPacked`
    /// freeze layout) — `n(n+1)/2` entries, half the memory of the square.
    pub fn to_packed(&self) -> Vec<Dist> {
        self.debug_assert_symmetric();
        let mut packed = Vec::with_capacity(self.n * (self.n + 1) / 2);
        for u in 0..self.n {
            packed.extend_from_slice(&self.row(u)[u..]);
        }
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_matrix_is_diagonal_zero() {
        let m = DistanceMatrix::new(3);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(0, 1), INF);
        assert_eq!(m.finite_pairs(), 0);
    }

    #[test]
    fn improve_is_symmetric_and_monotone() {
        let mut m = DistanceMatrix::new(3);
        m.improve(0, 1, 5);
        assert_eq!(m.get(1, 0), 5);
        m.improve(0, 1, 7);
        assert_eq!(m.get(0, 1), 5);
        m.improve(1, 0, 2);
        assert_eq!(m.get(0, 1), 2);
    }

    #[test]
    fn improve_via_saturates() {
        let mut m = DistanceMatrix::new(2);
        m.improve_via(0, 1, INF, 3);
        assert_eq!(m.get(0, 1), INF);
        m.improve_via(0, 1, 2, 3);
        assert_eq!(m.get(0, 1), 5);
    }

    #[test]
    fn merge_takes_pointwise_min() {
        let mut a = DistanceMatrix::new(2);
        a.improve(0, 1, 9);
        let mut b = DistanceMatrix::new(2);
        b.improve(0, 1, 4);
        a.merge(&b);
        assert_eq!(a.get(0, 1), 4);
    }

    #[test]
    fn merge_rows_symmetrizes() {
        let mut m = DistanceMatrix::new(3);
        let rows = vec![vec![0, 7, INF], vec![3, 0, INF], vec![INF, INF, 0]];
        m.merge_rows(&rows);
        // Min of the two orientations (7 and 3) wins for both directions.
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 3);
        assert_eq!(m.get(0, 2), INF);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_mismatch_panics() {
        let mut a = DistanceMatrix::new(2);
        let b = DistanceMatrix::new(3);
        a.merge(&b);
    }

    #[test]
    fn row_view_matches_get() {
        let mut m = DistanceMatrix::new(4);
        m.improve(0, 2, 3);
        m.improve(1, 3, 7);
        for u in 0..4 {
            let row = m.row(u);
            assert_eq!(row.len(), 4);
            for v in 0..4 {
                assert_eq!(row[v], m.get(u, v));
            }
        }
    }

    #[test]
    fn packed_export_round_trips_through_storage() {
        use cc_graphs::DistStorage;
        let mut m = DistanceMatrix::new(5);
        m.improve(0, 1, 2);
        m.improve(2, 4, 6);
        m.improve(1, 4, 1);
        let sym = DistStorage::symmetric_packed(5, m.to_packed());
        let full = DistStorage::full(5, m.to_flat());
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(sym.get(u, v), m.get(u, v));
                assert_eq!(full.get(u, v), m.get(u, v));
            }
        }
    }
}
