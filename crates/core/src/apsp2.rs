//! `(2+ε)`-approximate APSP (Thm 34, deterministic: Thm 53) — the paper's
//! most intricate pipeline.
//!
//! Essentially the best approximation achievable in sub-polynomial time: a
//! `(2−ε)`-approximation would imply sub-polynomial matrix multiplication
//! (§1.1). Distances split by a threshold `t = Θ(β/ε)`:
//!
//! * **`d ≥ t`** — the `(1+ε/2, β)`-emulator is already a `(1+ε)`
//!   approximation (Claim 37).
//! * **short, through a high-degree vertex** — a hitting set `S` of size
//!   `O(√n)` touches some neighbor of the path; `(1+ε/2)`-approximate
//!   distances to `S` (bounded hopset + source detection) plus
//!   distance-through-`S` give `2+ε` (Claims 38/39).
//! * **short, low-degree-only paths** — on the subgraph `G'` of low-degree
//!   edges: `(k,t)`-nearest lists; routing through a pivot set `A` hitting
//!   full lists (Case 2); routing through `A'`-attached neighbors for
//!   high-`G'`-degree border vertices (Case 3a); and an exact three-hop
//!   min-plus product `W₁·W₂·W₃` over the low-degree border edges `E''`
//!   (Case 3b) — Claims 40/41.
//!
//! Total: `O(log²β/ε)` rounds.

use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::EmulatorParams;
use cc_graphs::{dadd, Dist, Graph, INF};
use cc_matrix::{MinplusWorkspace, RowBuilder, SparseMatrix};
use cc_routes::{PathStore, RecId};
use cc_toolkit::knearest::{KNearest, Strategy};
use cc_toolkit::source_detection::SourceDetection;
use cc_toolkit::through_sets::{distance_through_sets, distance_through_sets_with_witness};
use rand::Rng;

use crate::error::CcError;
use crate::estimates::DistanceMatrix;
use crate::oracle::{DistOracle, Guarantee};
use crate::pipeline::{self, Mode, Substrates};
use cc_graphs::StorageKind;

/// Configuration of the `(2+ε)` pipeline.
#[derive(Clone, Debug)]
pub struct Apsp2Config {
    /// Accuracy `ε`.
    pub eps: f64,
    /// Emulator configuration (long range).
    pub emulator: CliqueEmulatorConfig,
    /// Low-degree-phase nearest-list width `k` (paper: `n^{1/4} log²n`).
    pub k: usize,
    /// High-degree threshold (paper: `√n log n`).
    pub high_degree_threshold: usize,
    /// Override of the short/long threshold `t`.
    pub t_override: Option<Dist>,
}

impl Apsp2Config {
    /// Paper profile with explicit level count `r`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(n: usize, eps: f64, r: usize) -> Result<Self, cc_emulator::params::ParamError> {
        let ln = (n.max(2) as f64).ln();
        Ok(Apsp2Config {
            eps,
            emulator: CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r)?),
            k: (((n as f64).powf(0.25) * ln * ln).ceil() as usize).clamp(2, n),
            high_degree_threshold: (((n as f64).sqrt() * ln).ceil() as usize).max(2),
            t_override: None,
        })
    }

    /// Benchmark-scale profile: `r = ⌊log₂log₂ n⌋`, `k = n^{1/4}·ln n`, and
    /// tempered hopset constants.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn scaled(n: usize, eps: f64) -> Result<Self, cc_emulator::params::ParamError> {
        let ln = (n.max(2) as f64).ln();
        Ok(Apsp2Config {
            eps,
            emulator: CliqueEmulatorConfig::scaled(EmulatorParams::loglog(n, eps)?),
            k: (((n as f64).powf(0.25) * ln).ceil() as usize).clamp(2, n),
            high_degree_threshold: (((n as f64).sqrt() * ln).ceil() as usize).max(2),
            t_override: None,
        })
    }

    /// The short/long threshold `t`.
    pub fn threshold(&self) -> Dist {
        self.t_override
            .unwrap_or_else(|| pipeline::default_threshold(&self.emulator, self.eps))
    }
}

/// Result of the `(2+ε)` pipeline.
#[derive(Clone, Debug)]
pub struct Apsp2 {
    /// The estimates.
    pub estimates: DistanceMatrix,
    /// The threshold `t` used.
    pub t: Dist,
    /// The proven guarantee for pairs within `t`: `2+ε`.
    pub short_range_guarantee: f64,
    /// High-degree hitting set `S`.
    pub high_degree_pivots: Vec<usize>,
    /// Low-degree pivot set `A`.
    pub low_degree_pivots: Vec<usize>,
    /// Per-pair path witnesses, recorded when the configuration set
    /// `record_paths`. `Arc`-shared so memoized results clone cheaply.
    pub paths: Option<std::sync::Arc<PathStore>>,
}

impl Apsp2 {
    /// The provenance every estimate of this result is served under.
    pub fn guarantee(&self) -> Guarantee {
        Guarantee::mult2(self.short_range_guarantee - 2.0)
    }

    /// Freezes the estimates into an immutable, `Arc`-shareable
    /// [`DistOracle`]. The pipeline's output is symmetric, so the oracle
    /// uses the symmetric-packed layout (half the memory of the square).
    pub fn into_oracle(self) -> DistOracle {
        let guarantee = self.guarantee();
        DistOracle::from_matrix(&self.estimates, guarantee, StorageKind::SymmetricPacked)
    }
}

/// Randomized `(2+ε)`-APSP (Thm 34).
///
/// # Errors
///
/// Returns [`CcError`] if a pipeline-internal hitting-set instance fails
/// validation.
pub fn run(
    g: &Graph,
    cfg: &Apsp2Config,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> Result<Apsp2, CcError> {
    run_mode(g, cfg, Mode::Rng(rng), ledger, &mut Substrates::new())
}

/// Deterministic `(2+ε)`-APSP (Thm 53).
///
/// # Errors
///
/// Returns [`CcError`] if a pipeline-internal hitting-set instance fails
/// validation.
pub fn run_deterministic(
    g: &Graph,
    cfg: &Apsp2Config,
    ledger: &mut RoundLedger,
) -> Result<Apsp2, CcError> {
    run_mode(g, cfg, Mode::Det, ledger, &mut Substrates::new())
}

pub(crate) fn run_mode(
    g: &Graph,
    cfg: &Apsp2Config,
    mut mode: Mode<'_>,
    ledger: &mut RoundLedger,
    substrates: &mut Substrates,
) -> Result<Apsp2, CcError> {
    let mut phase = ledger.enter("apsp2");
    let n = g.n();
    let t = cfg.threshold();
    let threads = cfg.emulator.threads;
    let mut delta = DistanceMatrix::new(n);
    // Witness shadowing: every `delta` improvement below is mirrored by an
    // offer with the same strict-improvement rule, so the estimates (and the
    // rounds — witnesses ride the same messages) are identical with
    // recording on or off.
    let mut paths = cfg.emulator.record_paths.then(|| PathStore::new(n));

    // ── Long range (Claim 37): emulator + adjacency. ──────────────────────
    let _ = pipeline::collect_emulator(
        g,
        &cfg.emulator,
        &mut mode,
        &mut delta,
        substrates,
        paths.as_mut(),
        &mut phase,
    );

    // ── Short paths through a high-degree vertex (Claims 38/39). ─────────
    let hdt = cfg.high_degree_threshold;
    let high_sets: Vec<Vec<usize>> = (0..n)
        .filter(|&v| g.degree(v) >= hdt)
        .map(|v| g.neighbors(v).iter().map(|&u| u as usize).collect())
        .collect();
    let s_pivots = substrates.hitting_set_for(
        "apsp2/high-degree",
        n,
        hdt,
        &high_sets,
        &mut mode,
        &mut phase,
    )?;
    if !s_pivots.is_empty() {
        let hs = substrates.hopset_for(
            "input",
            g,
            2 * t,
            cfg.eps / 2.0,
            cfg.emulator.scaled_hopset,
            threads,
            cfg.emulator.record_paths,
            &mut mode,
            &mut phase,
        );
        let union = hs.union_with(g);
        let sd = match &paths {
            Some(_) => SourceDetection::run_with_parents(&union, &s_pivots, hs.beta, &mut phase),
            None => SourceDetection::run(&union, &s_pivots, hs.beta, &mut phase),
        };
        if let Some(p) = paths.as_mut() {
            p.absorb_routes(hs.routes.as_ref().expect("hopset built with paths"));
        }
        for v in 0..n {
            for (i, &s) in s_pivots.iter().enumerate() {
                let d = sd.dist_to_source_index(v, i);
                if d < INF {
                    delta.improve(v, s, d);
                    if let Some(p) = paths.as_mut() {
                        offer_sd_chain(p, g, &sd, i, v, d);
                    }
                }
            }
        }
        let sets: Vec<Vec<usize>> = vec![s_pivots.clone(); n];
        merge_through_sets(n, &sets, &mut delta, paths.as_mut(), &mut phase);
    }

    // ── Short low-degree-only paths (Claims 40/41), on G'. ───────────────
    let gp = g.low_degree_subgraph(hdt);
    let k = cfg.k;

    // Step 2: (k,t)-nearest in G' (exact distances). G' edges are G edges,
    // so the parent chains unroll into the input graph directly.
    let mut kn = KNearest::compute_with(&gp, k, t, Strategy::TruncatedBfs, threads, &mut phase);
    if paths.is_some() {
        kn = kn.with_parents(&gp);
    }
    // Per-entry records of the lists (recording only), reused by the kn
    // offers and as the W₁/W₃ factor provenance of Case 3b.
    let kn_recs: Vec<Vec<Option<RecId>>> = match paths.as_mut() {
        Some(p) => (0..n)
            .map(|u| kn.route_recs(u, p.routes_mut().arena_mut()))
            .collect(),
        None => Vec::new(),
    };
    for u in 0..n {
        for (idx, &(v, d)) in kn.list(u).iter().enumerate() {
            if v as usize != u {
                delta.improve(u, v as usize, d);
                if let Some(p) = paths.as_mut() {
                    p.offer_rec(u, v as usize, d, kn_recs[u][idx].expect("non-root entry"));
                }
            }
        }
    }

    // Step 3: distance through the nearest-lists (Case 1 pairs).
    let kn_sets: Vec<Vec<usize>> = (0..n)
        .map(|u| kn.list(u).iter().map(|&(v, _)| v as usize).collect())
        .collect();
    merge_through_sets(n, &kn_sets, &mut delta, paths.as_mut(), &mut phase);

    // Steps 4–7: pivot set A over full lists; route through p_A (Case 2).
    let full_sets: Vec<Vec<usize>> = (0..n)
        .filter(|&v| kn.list(v).len() >= k)
        .map(|v| kn_sets[v].clone())
        .collect();
    let a_pivots = substrates.hitting_set_for(
        "apsp2/low-degree-A",
        n,
        k,
        &full_sets,
        &mut mode,
        &mut phase,
    )?;
    // One hopset of G' serves steps 5 and 9.
    let gp_hopset = if a_pivots.is_empty() && gp.m() == 0 {
        None
    } else {
        Some(substrates.hopset_for(
            "low-degree",
            &gp,
            2 * t,
            cfg.eps / 2.0,
            cfg.emulator.scaled_hopset,
            threads,
            cfg.emulator.record_paths,
            &mut mode,
            &mut phase,
        ))
    };
    if let (Some(hs), Some(p)) = (&gp_hopset, paths.as_mut()) {
        p.absorb_routes(hs.routes.as_ref().expect("hopset built with paths"));
    }
    if let (Some(hs), false) = (&gp_hopset, a_pivots.is_empty()) {
        let union = hs.union_with(&gp);
        let sd = match &paths {
            Some(_) => SourceDetection::run_with_parents(&union, &a_pivots, hs.beta, &mut phase),
            None => SourceDetection::run(&union, &a_pivots, hs.beta, &mut phase),
        };
        for v in 0..n {
            for (i, &a) in a_pivots.iter().enumerate() {
                let d = sd.dist_to_source_index(v, i);
                if d < INF {
                    delta.improve(v, a, d);
                    if let Some(p) = paths.as_mut() {
                        offer_sd_chain(p, g, &sd, i, v, d);
                    }
                }
            }
        }
        phase.charge_broadcast("announce nearest A-pivots");
        let mut a_mask = vec![false; n];
        for &a in &a_pivots {
            a_mask[a] = true;
        }
        for u in 0..n {
            if let Some((a, _)) = kn.nearest_in(u, &a_mask) {
                let a = a as usize;
                let via = delta.get(u, a);
                if via >= INF {
                    continue;
                }
                for v in 0..n {
                    if v != u {
                        let leg = delta.get(a, v);
                        if leg < INF {
                            delta.improve_via(u, v, via, leg);
                            if let Some(p) = paths.as_mut() {
                                p.offer_via(u, v, dadd(via, leg), a);
                            }
                        }
                    }
                }
            }
        }
    }

    // Steps 8–11: A' hits the neighborhoods of high-G'-degree vertices;
    // route through list-attached A'-members (Case 3a).
    let thresh2 = (n / (k * k)).max(1);
    let big_sets: Vec<Vec<usize>> = (0..n)
        .filter(|&v| gp.degree(v) >= thresh2)
        .map(|v| gp.neighbors(v).iter().map(|&u| u as usize).collect())
        .collect();
    let a2_pivots = substrates.hitting_set_for(
        "apsp2/low-degree-A2",
        n,
        thresh2,
        &big_sets,
        &mut mode,
        &mut phase,
    )?;
    if let (Some(hs), false) = (&gp_hopset, a2_pivots.is_empty()) {
        let union = hs.union_with(&gp);
        let sd = match &paths {
            Some(_) => SourceDetection::run_with_parents(&union, &a2_pivots, hs.beta, &mut phase),
            None => SourceDetection::run(&union, &a2_pivots, hs.beta, &mut phase),
        };
        for v in 0..n {
            for (i, &a) in a2_pivots.iter().enumerate() {
                let d = sd.dist_to_source_index(v, i);
                if d < INF {
                    delta.improve(v, a, d);
                    if let Some(p) = paths.as_mut() {
                        offer_sd_chain(p, g, &sd, i, v, d);
                    }
                }
            }
        }
        // Step 10: every vertex announces one A'-neighbor (1 round); each u
        // assembles A'_u from its list.
        phase.charge_broadcast("announce A'-attachments");
        let mut a2_mask = vec![false; n];
        for &a in &a2_pivots {
            a2_mask[a] = true;
        }
        let attachment: Vec<Option<u32>> = (0..n)
            .map(|v| {
                gp.neighbors(v)
                    .iter()
                    .copied()
                    .find(|&w| a2_mask[w as usize])
            })
            .collect();
        // Step 11: min-plus product of the (u, A'_u) estimates with the
        // (A', V) estimates — charged as a sparse product (Thm 36).
        phase.charge_sparse_minplus(
            "route through A'_u",
            k as u64,
            a2_pivots.len() as u64,
            n as u64,
        );
        for u in 0..n {
            let mut a_u: Vec<usize> = kn_sets[u]
                .iter()
                .filter_map(|&v| attachment[v].map(|w| w as usize))
                .collect();
            a_u.sort_unstable();
            a_u.dedup();
            for w in a_u {
                let via = delta.get(u, w);
                if via >= INF {
                    continue;
                }
                for v in 0..n {
                    if v != u {
                        let leg = delta.get(w, v);
                        if leg < INF {
                            delta.improve_via(u, v, via, leg);
                            if let Some(p) = paths.as_mut() {
                                p.offer_via(u, v, dadd(via, leg), w);
                            }
                        }
                    }
                }
            }
        }
    }

    // Steps 12–14: exact three-hop product over the border edges E''
    // (Case 3b): W₁ = nearest-lists, W₂ = edges leaving low-G'-degree
    // vertices, W₃ = W₁ᵀ.
    if gp.m() > 0 {
        let minplus_started = substrates.stages.borrow().start();
        let mut w1 = RowBuilder::new(n);
        for u in 0..n {
            for &(v, d) in kn.list(u) {
                w1.push(u, v as usize, d);
            }
        }
        let w1 = w1.build();
        let mut w2 = RowBuilder::new(n);
        for x in 0..n {
            if gp.degree(x) <= thresh2 {
                for &y in gp.neighbors(x) {
                    w2.push(x, y as usize, 1);
                }
            }
        }
        let w2 = w2.build();
        let w3 = w1.transpose();
        let mut ws = MinplusWorkspace::with_threads(threads);
        // When recording, the witness-carrying kernels run instead; their
        // outputs are bit-identical and the Thm 36 charge is the same
        // density formula either way.
        let (pm, wp) = match &paths {
            Some(_) => {
                let (pm, wp) = w1.minplus_with_witness(&w2, &mut ws);
                (pm, Some(wp))
            }
            None => (w1.minplus_with(&w2, &mut ws), None),
        };
        phase.charge_sparse_minplus(
            "E'' product W1·W2",
            w1.density(),
            w2.density(),
            pm.density(),
        );
        let (q, wq) = match &paths {
            Some(_) => {
                let (q, wq) = pm.minplus_with_witness(&w3, &mut ws);
                (q, Some(wq))
            }
            None => (pm.minplus_with(&w3, &mut ws), None),
        };
        phase.charge_sparse_minplus(
            "E'' product (W1·W2)·W3",
            pm.density(),
            w3.density(),
            q.density(),
        );
        if let (Some(p), Some(wp), Some(wq)) = (paths.as_mut(), &wp, &wq) {
            offer_product_routes(p, &kn, &kn_recs, &w1, &pm, wp, &q, wq);
        }
        for u in 0..n {
            for &(v, d) in q.row(u) {
                let v = v as usize;
                if v != u && d < INF {
                    delta.improve(u, v, d);
                }
            }
        }
        substrates
            .stages
            .borrow_mut()
            .stop("minplus_products", minplus_started);
    }

    Ok(Apsp2 {
        estimates: delta,
        t,
        short_range_guarantee: 2.0 + cfg.eps,
        high_degree_pivots: s_pivots,
        low_degree_pivots: a_pivots,
        paths: paths.map(std::sync::Arc::new),
    })
}

/// Offers the source-detection walk behind `(sources[i], v)` at value `d`.
/// The chains step over `G ∪ H`; hopset hops resolve against the routes the
/// store absorbed from the hopset.
fn offer_sd_chain(p: &mut PathStore, g: &Graph, sd: &SourceDetection, i: usize, v: usize, d: Dist) {
    if let Some(chain) = sd.chain(i, v) {
        let chain: Vec<u32> = chain.into_iter().map(|x| x as u32).collect();
        p.offer_walk(g, d, &chain);
    }
}

/// `distance_through_sets` followed by the symmetric merge, shadowed with
/// `Via` witnesses when recording. Values and round charges are identical in
/// both branches (the witness variant is pinned to the plain one by test).
fn merge_through_sets(
    n: usize,
    sets: &[Vec<usize>],
    delta: &mut DistanceMatrix,
    paths: Option<&mut PathStore>,
    ledger: &mut RoundLedger,
) {
    match paths {
        None => {
            let rows = distance_through_sets(n, sets, |v, w| delta.get(v, w), ledger);
            delta.merge_rows(&rows);
        }
        Some(p) => {
            let (rows, wit) =
                distance_through_sets_with_witness(n, sets, |v, w| delta.get(v, w), ledger);
            // The witnesses were computed against the pre-merge estimates,
            // which is exactly what the store still mirrors: d ≥
            // value(u,w) + value(w,v) holds at offer time.
            for (u, row) in rows.iter().enumerate() {
                for (v, &d) in row.iter().enumerate() {
                    if u != v && d < INF {
                        p.offer_via(u, v, d, wit[u][v] as usize);
                    }
                }
            }
            delta.merge_rows(&rows);
        }
    }
}

/// Offers routes for the Case 3b three-hop product `q = (W₁·W₂)·W₃`: each
/// winning entry's walk is assembled from the kernel witnesses — `u ⇝ k`
/// from the `(k,t)`-nearest record, the border edge `k → y`, and the
/// reversed nearest record `y ⇝ v`.
#[allow(clippy::too_many_arguments)]
fn offer_product_routes(
    store: &mut PathStore,
    kn: &KNearest,
    kn_recs: &[Vec<Option<RecId>>],
    w1: &SparseMatrix,
    pm: &SparseMatrix,
    wp: &[u32],
    q: &SparseMatrix,
    wq: &[u32],
) {
    let n = w1.n();
    // Column-indexed nearest-list records per vertex: rec_of[u] is sorted by
    // column, mirroring w1.row(u).
    let rec_of: Vec<Vec<(u32, RecId)>> = (0..n)
        .map(|u| {
            let mut row: Vec<(u32, RecId)> = kn
                .list(u)
                .iter()
                .zip(&kn_recs[u])
                .filter(|&(&(c, _), _)| c as usize != u)
                .map(|(&(c, _), rec)| (c, rec.expect("non-root entry")))
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            row
        })
        .collect();
    let lookup = |row: &[(u32, RecId)], col: u32| -> RecId {
        let pos = row
            .binary_search_by_key(&col, |&(c, _)| c)
            .expect("witness column is a list entry");
        row[pos].1
    };
    // The arena is append-only, so only intern records for offers that will
    // actually win (and only the pm prefixes those winners reference) —
    // losing records would otherwise sit in the arena for the session and
    // bloat the CCRO snapshot.
    let mut precs: Vec<Option<RecId>> = Vec::new();
    for u in 0..n {
        let prow = pm.row(u);
        let pwit = &wp[pm.row_range(u)];
        let qwit = &wq[q.row_range(u)];
        precs.clear();
        precs.resize(prow.len(), None);
        for (&(v, d), &y) in q.row(u).iter().zip(qwit) {
            let v = v as usize;
            if v == u || d >= INF || d >= store.value(u, v) {
                continue;
            }
            // q(u,v) = pm(u,y) + w3(y,v); w3 = W₁ᵀ, so the right leg is the
            // reversed nearest record of v toward y.
            let pos = prow
                .binary_search_by_key(&y, |&(c, _)| c)
                .expect("witness column is a pm entry");
            let left = *precs[pos].get_or_insert_with(|| {
                // pm(u,y) = w1(u,k) + w2(k,y); w2 entries are G' ⊆ G edges.
                let kk = pwit[pos];
                let hop = store.routes_mut().arena_mut().edge(kk, y);
                if kk as usize == u {
                    hop // w1 diagonal (distance 0): the border edge alone
                } else {
                    let prefix = lookup(&rec_of[u], kk);
                    store.routes_mut().arena_mut().cat(prefix, hop)
                }
            });
            let rec = if y as usize == v {
                left // w1 diagonal on the right: nothing to append
            } else {
                let fwd = lookup(&rec_of[v], y);
                let back = store.routes_mut().arena_mut().rev(fwd);
                store.routes_mut().arena_mut().cat(left, back)
            };
            store.offer_rec(u, v, d, rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators, stretch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_short_range(g: &Graph, out: &Apsp2, label: &str) {
        let exact = bfs::apsp_exact(g);
        let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
        assert_eq!(report.lower_violations, 0, "{label}");
        assert_eq!(report.missed, 0, "{label}");
        assert!(
            report.max_multiplicative <= out.short_range_guarantee + 1e-9,
            "{label}: stretch {} exceeds {}",
            report.max_multiplicative,
            out.short_range_guarantee
        );
    }

    #[test]
    fn two_plus_eps_on_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for (name, g) in [
            ("cycle", generators::cycle(56)),
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("gnp", generators::connected_gnp(72, 0.07, &mut rng)),
            ("star+path", generators::barbell(12, 16)),
        ] {
            let cfg = Apsp2Config::new(g.n(), 0.5, 2).unwrap();
            let mut ledger = RoundLedger::new(g.n());
            let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
            assert_short_range(&g, &out, name);
        }
    }

    #[test]
    fn deterministic_two_plus_eps() {
        for (name, g) in [
            ("caveman", generators::caveman(7, 7)),
            ("grid", generators::grid(7, 7)),
        ] {
            let cfg = Apsp2Config::new(g.n(), 0.5, 2).unwrap();
            let mut ledger = RoundLedger::new(g.n());
            let out = run_deterministic(&g, &cfg, &mut ledger).unwrap();
            assert_short_range(&g, &out, name);
        }
    }

    #[test]
    fn dense_graph_exercises_high_degree_phase() {
        // A star-heavy graph: the hub exceeds the √n·log n threshold.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut edges: Vec<(usize, usize)> = (1..40).map(|v| (0, v)).collect();
        edges.extend((1..39).map(|v| (v, v + 1)));
        let g = Graph::from_edges(40, &edges);
        let mut cfg = Apsp2Config::new(40, 0.5, 2).unwrap();
        cfg.high_degree_threshold = 10; // force the phase at this scale
        let mut ledger = RoundLedger::new(40);
        let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
        assert!(!out.high_degree_pivots.is_empty());
        assert_short_range(&g, &out, "hub");
    }

    #[test]
    fn estimates_are_symmetric() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::connected_gnp(48, 0.08, &mut rng);
        let cfg = Apsp2Config::new(48, 0.5, 2).unwrap();
        let mut ledger = RoundLedger::new(48);
        let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
        for u in 0..48 {
            for v in 0..48 {
                assert_eq!(out.estimates.get(u, v), out.estimates.get(v, u));
            }
        }
    }

    #[test]
    fn scaled_profile_also_meets_guarantee() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::caveman(8, 8);
        let cfg = Apsp2Config::scaled(g.n(), 0.5).unwrap();
        let mut ledger = RoundLedger::new(g.n());
        let out = run(&g, &cfg, &mut rng, &mut ledger).unwrap();
        assert_short_range(&g, &out, "scaled");
    }
}
