//! Approximate shortest paths in the Congested Clique in `poly(log log n)`
//! rounds — the applications of Dory–Parter (PODC 2020), §4 and §5.2.
//!
//! Built on the `(1+ε, β)`-emulator of [`cc_emulator`] and the
//! distance-sensitive tool-kit of [`cc_toolkit`], this crate provides the
//! paper's three headline algorithms for unweighted undirected graphs, in
//! randomized and deterministic variants:
//!
//! | Problem | Theorem | Module |
//! |---|---|---|
//! | `(1+ε, β)`-APSP | Thm 32 / 51 | [`apsp_additive`] |
//! | `(1+ε)`-MSSP from `O(√n)` sources | Thm 33 / 52 | [`mssp`] |
//! | `(2+ε)`-APSP | Thm 34 / 53 | [`apsp2`] |
//! | `(3+ε)`-APSP (warm-up of §4.3) | — | [`apsp3`] |
//!
//! The common recipe: the emulator, once collected by every vertex
//! (`O(log log n)` rounds — it has `O(n log log n)` edges), answers every
//! *long* distance (`d ≥ t = Θ(β/ε)`) with stretch `1+Θ(ε)`; the *short*
//! distances (`d ≤ t`) are recovered by `t`-bounded tools whose round
//! complexity is `poly(log t) = poly(log log n)`.
//!
//! All algorithms return a [`DistanceMatrix`] (or per-source rows) of
//! estimates `δ` with `d_G(u,v) ≤ δ(u,v)` always, plus the approximation
//! guarantee actually proven for the chosen parameters.
//!
//! # Example
//!
//! ```
//! use cc_clique::RoundLedger;
//! use cc_core::apsp2::{self, Apsp2Config};
//! use cc_graphs::generators;
//! use rand::SeedableRng;
//!
//! let g = generators::caveman(6, 6);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut ledger = RoundLedger::new(g.n());
//! let cfg = Apsp2Config::scaled(g.n(), 0.5).unwrap();
//! let result = apsp2::run(&g, &cfg, &mut rng, &mut ledger);
//! let exact = cc_graphs::bfs::apsp_exact(&g);
//! for u in 0..g.n() {
//!     for v in 0..g.n() {
//!         if u != v {
//!             assert!(result.estimates.get(u, v) >= exact[u][v]);
//!         }
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod apsp2;
pub mod apsp3;
pub mod apsp_additive;
pub mod estimates;
pub mod facade;
pub mod mssp;
mod pipeline;

pub use estimates::DistanceMatrix;
pub use facade::{solve, Execution, Problem, Solution};
