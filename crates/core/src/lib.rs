//! Approximate shortest paths in the Congested Clique in `poly(log log n)`
//! rounds — the applications of Dory–Parter (PODC 2020), §4 and §5.2.
//!
//! Built on the `(1+ε, β)`-emulator of [`cc_emulator`] and the
//! distance-sensitive tool-kit of [`cc_toolkit`], this crate provides the
//! paper's three headline algorithms for unweighted undirected graphs, in
//! randomized and deterministic variants:
//!
//! | Problem | Theorem | Module |
//! |---|---|---|
//! | `(1+ε, β)`-APSP | Thm 32 / 51 | [`apsp_additive`] |
//! | `(1+ε)`-MSSP from `O(√n)` sources | Thm 33 / 52 | [`mssp`] |
//! | `(2+ε)`-APSP | Thm 34 / 53 | [`apsp2`] |
//! | `(3+ε)`-APSP (warm-up of §4.3) | — | [`apsp3`] |
//!
//! The common recipe: the emulator, once collected by every vertex
//! (`O(log log n)` rounds — it has `O(n log log n)` edges), answers every
//! *long* distance (`d ≥ t = Θ(β/ε)`) with stretch `1+Θ(ε)`; the *short*
//! distances (`d ≤ t`) are recovered by `t`-bounded tools whose round
//! complexity is `poly(log t) = poly(log log n)`.
//!
//! All algorithms return a [`DistanceMatrix`] (or per-source rows) of
//! estimates `δ` with `d_G(u,v) ≤ δ(u,v)` always, plus the approximation
//! guarantee actually proven for the chosen parameters.
//!
//! # Example
//!
//! The [`Solver`] session API is the recommended entry point: configure it
//! once, then issue queries that share the cached substrates.
//!
//! ```
//! use cc_core::{Execution, SolverBuilder};
//! use cc_graphs::generators;
//!
//! let g = generators::caveman(6, 6);
//! let mut solver = SolverBuilder::new(g.clone())
//!     .eps(0.5)
//!     .execution(Execution::Seeded(1))
//!     .build()?;
//! let result = solver.apsp_2eps()?;
//! let exact = cc_graphs::bfs::apsp_exact(&g);
//! for u in 0..g.n() {
//!     for v in 0..g.n() {
//!         if u != v {
//!             assert!(result.estimates.get(u, v) >= exact[u][v]);
//!         }
//!     }
//! }
//! // A follow-up MSSP query reuses the emulator built above.
//! let rounds_before = solver.total_rounds();
//! let _ = solver.mssp(&[0, 6, 12])?;
//! assert!(solver.total_rounds() > rounds_before);
//! # Ok::<(), cc_core::CcError>(())
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod apsp2;
pub mod apsp3;
pub mod apsp_additive;
pub mod error;
pub mod estimates;
pub mod facade;
pub mod mssp;
pub mod oracle;
pub mod path_oracle;
mod pipeline;
pub mod snapshot;
pub mod solver;

pub use algorithm::{Algorithm, AlgorithmOutput};
pub use error::CcError;
pub use estimates::DistanceMatrix;
#[allow(deprecated)]
pub use facade::solve;
pub use facade::{Problem, Solution};
pub use oracle::{DistOracle, Guarantee, GuaranteeKind, PointEstimate, SnapshotError};
pub use path_oracle::{PathOracle, PathProvider, Route};
pub use solver::{Execution, ParamProfile, Solver, SolverBuilder};
