//! One interface over every APSP-class algorithm in the workspace.
//!
//! The paper's pipelines (this crate) and the comparison baselines
//! (`cc_baselines`) historically exposed ad-hoc `run`/`apsp` functions with
//! different shapes, so every experiment binary re-wired each one by hand.
//! [`Algorithm`] normalizes them: estimates as dense rows, a proven
//! `(multiplicative, additive)` guarantee, rounds charged to the caller's
//! ledger, failures as [`CcError`]. Benches and tests iterate over
//! `&[&dyn Algorithm]` instead of copy-pasting call sites.

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::apsp2::{self, Apsp2Config};
use crate::apsp3::{self, Apsp3Config};
use crate::apsp_additive::{self, AdditiveApspConfig};
use crate::error::CcError;
use crate::solver::Execution;

/// Dispatches one run to the seeded or deterministic variant of a pipeline,
/// centralizing per-run generator construction for every `Algorithm` impl.
fn run_either<T>(
    execution: Execution,
    ledger: &mut RoundLedger,
    seeded: impl FnOnce(&mut StdRng, &mut RoundLedger) -> T,
    deterministic: impl FnOnce(&mut RoundLedger) -> T,
) -> T {
    match execution {
        Execution::Seeded(seed) => seeded(&mut StdRng::seed_from_u64(seed), ledger),
        Execution::Deterministic => deterministic(ledger),
    }
}

/// Normalized output of one APSP-class run.
#[derive(Clone, Debug)]
pub struct AlgorithmOutput {
    /// `estimates[u][v] ≥ d(u,v)` for all pairs.
    pub estimates: Vec<Vec<Dist>>,
    /// The proven `(multiplicative, additive)` guarantee: for pairs the
    /// algorithm covers, `estimates[u][v] ≤ mult·d(u,v) + add`. For the
    /// multiplicative pipelines the bound is their short-range guarantee.
    pub guarantee: (f64, f64),
}

/// An all-pairs shortest-path algorithm driven through one interface.
pub trait Algorithm {
    /// Display name (used as the row label in experiment tables).
    fn name(&self) -> String;

    /// Runs on `g`, charging simulated rounds to `ledger`.
    ///
    /// Algorithms without a deterministic variant document how they treat
    /// [`Execution::Deterministic`].
    ///
    /// # Errors
    ///
    /// Returns [`CcError`] on invalid parameters or pipeline failures.
    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError>;
}

/// The `(1+ε, β)`-APSP pipeline (Thm 5/32) under the scaled profile.
#[derive(Clone, Copy, Debug)]
pub struct NearAdditiveApsp {
    /// Accuracy `ε`.
    pub eps: f64,
}

impl Algorithm for NearAdditiveApsp {
    fn name(&self) -> String {
        format!("DP20 (1+{}, beta)-APSP", self.eps)
    }

    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        let cfg = AdditiveApspConfig::scaled(g.n(), self.eps)?;
        let out = run_either(
            execution,
            ledger,
            |rng, ledger| apsp_additive::run(g, &cfg, rng, ledger),
            |ledger| apsp_additive::run_deterministic(g, &cfg, ledger),
        );
        Ok(AlgorithmOutput {
            estimates: out.estimates.to_rows(),
            guarantee: (out.multiplicative_bound, out.additive_bound),
        })
    }
}

/// The `(2+ε)`-APSP pipeline (Thm 4/34) under the scaled profile.
#[derive(Clone, Copy, Debug)]
pub struct TwoPlusEpsApsp {
    /// Accuracy `ε`.
    pub eps: f64,
}

impl Algorithm for TwoPlusEpsApsp {
    fn name(&self) -> String {
        format!("DP20 (2+{})-APSP", self.eps)
    }

    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        let cfg = Apsp2Config::scaled(g.n(), self.eps)?;
        let out = run_either(
            execution,
            ledger,
            |rng, ledger| apsp2::run(g, &cfg, rng, ledger),
            |ledger| apsp2::run_deterministic(g, &cfg, ledger),
        )?;
        Ok(AlgorithmOutput {
            estimates: out.estimates.to_rows(),
            guarantee: (out.short_range_guarantee, 0.0),
        })
    }
}

/// The `(3+ε)`-APSP warm-up pipeline (§4.3) under the scaled profile.
#[derive(Clone, Copy, Debug)]
pub struct ThreePlusEpsApsp {
    /// Accuracy `ε`.
    pub eps: f64,
}

impl Algorithm for ThreePlusEpsApsp {
    fn name(&self) -> String {
        format!("DP20 (3+{})-APSP warm-up", self.eps)
    }

    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        let cfg = Apsp3Config::scaled(g.n(), self.eps)?;
        let out = run_either(
            execution,
            ledger,
            |rng, ledger| apsp3::run(g, &cfg, rng, ledger),
            |ledger| apsp3::run_deterministic(g, &cfg, ledger),
        )?;
        Ok(AlgorithmOutput {
            estimates: out.estimates.to_rows(),
            guarantee: (out.short_range_guarantee, 0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn paper_pipelines_run_through_the_trait() {
        let g = generators::caveman(6, 6);
        let exact = bfs::apsp_exact(&g);
        let algorithms: Vec<Box<dyn Algorithm>> = vec![
            Box::new(NearAdditiveApsp { eps: 0.25 }),
            Box::new(TwoPlusEpsApsp { eps: 0.5 }),
            Box::new(ThreePlusEpsApsp { eps: 0.5 }),
        ];
        for alg in &algorithms {
            let mut ledger = RoundLedger::new(g.n());
            let out = alg.run(&g, Execution::Seeded(5), &mut ledger).unwrap();
            assert!(ledger.total_rounds() > 0, "{}", alg.name());
            for u in 0..g.n() {
                for v in 0..g.n() {
                    assert!(
                        out.estimates[u][v] >= exact[u][v],
                        "{} undercuts at ({u},{v})",
                        alg.name()
                    );
                }
            }
            assert!(out.guarantee.0 >= 1.0);
        }
    }

    #[test]
    fn deterministic_execution_reproduces() {
        let g = generators::grid(6, 6);
        let alg = TwoPlusEpsApsp { eps: 0.5 };
        let mut l1 = RoundLedger::new(g.n());
        let a = alg.run(&g, Execution::Deterministic, &mut l1).unwrap();
        let mut l2 = RoundLedger::new(g.n());
        let b = alg.run(&g, Execution::Deterministic, &mut l2).unwrap();
        assert_eq!(a.estimates, b.estimates);
    }
}
