//! Property tests for the pure round-cost formulas in `cc_clique::cost::model`.
//!
//! The formulas are the contract between the algorithm layer (which charges
//! them) and the paper's communication lemmas, so the integer helpers must be
//! *exact*: `cbrt_ceil` and `log2_ceil` are checked against naive reference
//! implementations over the full `u64` range (including near-`u64::MAX`
//! saturation), and `learn_all` must be monotone in the word count.

use cc_clique::cost::model;
use proptest::prelude::*;

/// Exact integer ceiling cube root via binary search in `u128` arithmetic.
fn naive_cbrt_ceil(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let (mut lo, mut hi) = (1u64, 2_642_246u64); // 2642246³ > u64::MAX
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (mid as u128).pow(3) >= x as u128 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Exact `⌈log₂ x⌉` by repeated doubling in `u128`.
fn naive_log2_ceil(x: u64) -> u64 {
    let mut count = 0u64;
    let mut p = 1u128;
    while p < x as u128 {
        p *= 2;
        count += 1;
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cbrt_ceil_is_exact_everywhere(x in 0u64..u64::MAX) {
        prop_assert_eq!(model::cbrt_ceil(x), naive_cbrt_ceil(x), "x = {}", x);
    }

    #[test]
    fn cbrt_ceil_is_exact_near_saturation(delta in 0u64..1_000_000) {
        let x = u64::MAX - delta;
        prop_assert_eq!(model::cbrt_ceil(x), naive_cbrt_ceil(x), "x = {}", x);
    }

    #[test]
    fn cbrt_ceil_brackets_perfect_cubes(r in 1u64..2_642_245) {
        let cube = (r as u128).pow(3);
        if cube <= u64::MAX as u128 {
            let cube = cube as u64;
            prop_assert_eq!(model::cbrt_ceil(cube), r);
            prop_assert_eq!(model::cbrt_ceil(cube - 1), r);
            if cube < u64::MAX {
                prop_assert_eq!(model::cbrt_ceil(cube + 1), r + 1);
            }
        }
    }

    #[test]
    fn log2_ceil_matches_naive_loop(x in 0u64..u64::MAX) {
        prop_assert_eq!(model::log2_ceil(x), naive_log2_ceil(x), "x = {}", x);
    }

    #[test]
    fn log2_ceil_exact_at_powers(p in 1u32..64) {
        let x = 1u64 << p;
        prop_assert_eq!(model::log2_ceil(x), p as u64);
        prop_assert_eq!(model::log2_ceil(x - 1), if p == 1 { 0 } else { p as u64 });
        if p < 63 {
            prop_assert_eq!(model::log2_ceil(x + 1), p as u64 + 1);
        }
    }

    #[test]
    fn learn_all_is_monotone_in_k((k1, k2, n) in (0u64..1 << 40, 0u64..1 << 40, 1u64..1 << 20)) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(
            model::learn_all(lo, n) <= model::learn_all(hi, n),
            "learn_all({lo}, {n}) > learn_all({hi}, {n})"
        );
    }

    #[test]
    fn learn_all_dominates_gather((k, n) in (0u64..1 << 40, 1u64..1 << 20)) {
        // Learning at all nodes can never be cheaper than one node gathering.
        prop_assert!(model::learn_all(k, n) >= model::gather_to_one(k, n));
    }
}

#[test]
fn cbrt_ceil_saturation_endpoints() {
    // The exact ceiling cube root of u64::MAX is 2642246 (2642245³ < MAX).
    assert_eq!(model::cbrt_ceil(u64::MAX), 2_642_246);
    assert_eq!(model::cbrt_ceil(2_642_245u64.pow(3)), 2_642_245);
    assert_eq!(model::cbrt_ceil(2_642_245u64.pow(3) + 1), 2_642_246);
}
