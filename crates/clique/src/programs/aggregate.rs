//! Global minimum aggregation: two rounds.

use crate::engine::{NodeProgram, RoundCtx};
use crate::message::Message;
use crate::node::NodeId;

const TAG_UP: u16 = 2;
const TAG_DOWN: u16 = 3;

/// Computes the global minimum of one value per node, known to all nodes, in
/// two rounds: every node sends its value to node 0 (the clique allows a node
/// to *receive* `n − 1` messages in one round), and node 0 broadcasts the
/// minimum.
///
/// # Example
///
/// ```
/// use cc_clique::programs::MinAggregate;
/// use cc_clique::{Engine, NodeId};
///
/// let values = [5u64, 3, 9, 7];
/// let nodes = values
///     .iter()
///     .enumerate()
///     .map(|(i, &v)| MinAggregate::new(NodeId::new(i), v))
///     .collect();
/// let mut engine = Engine::new(nodes);
/// engine.run().unwrap();
/// assert!(engine.nodes().iter().all(|p| p.result() == Some(3)));
/// ```
#[derive(Clone, Debug)]
pub struct MinAggregate {
    me: NodeId,
    value: u64,
    best: u64,
    result: Option<u64>,
    phase: u8,
}

impl MinAggregate {
    /// Creates the program state for node `me` holding `value`.
    pub fn new(me: NodeId, value: u64) -> Self {
        MinAggregate {
            me,
            value,
            best: value,
            result: None,
            phase: 0,
        }
    }

    /// The global minimum once the protocol has finished at this node.
    pub fn result(&self) -> Option<u64> {
        self.result
    }
}

impl NodeProgram for MinAggregate {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let root = NodeId::new(0);
        match self.phase {
            0 => {
                if self.me != root {
                    ctx.send(root, Message::word(TAG_UP, self.value));
                }
                self.phase = 1;
            }
            1 => {
                if self.me == root {
                    for env in ctx.inbox() {
                        if env.msg.tag() == TAG_UP {
                            if let Some(v) = env.msg.first() {
                                self.best = self.best.min(v);
                            }
                        }
                    }
                    self.result = Some(self.best);
                    ctx.send_all(Message::word(TAG_DOWN, self.best));
                }
                self.phase = 2;
            }
            _ => {
                for env in ctx.inbox() {
                    if env.msg.tag() == TAG_DOWN {
                        self.result = env.msg.first();
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.result.is_some() || (self.phase >= 2 && self.me.index() != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn computes_min_at_all_nodes() {
        let values = [17u64, 4, 99, 4, 23, 8];
        let nodes = values
            .iter()
            .enumerate()
            .map(|(i, &v)| MinAggregate::new(NodeId::new(i), v))
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        for p in engine.nodes() {
            assert_eq!(p.result(), Some(4));
        }
        // Exactly the two communication rounds the ledger charges (up +
        // down); the trailing drain step is free local computation.
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn single_node_trivially_done() {
        let nodes = vec![MinAggregate::new(NodeId::new(0), 13)];
        let mut engine = Engine::new(nodes);
        engine.run().unwrap();
        assert_eq!(engine.nodes()[0].result(), Some(13));
    }
}
