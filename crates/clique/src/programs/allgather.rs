//! All-gather: every node learns every word — the message-level grounding
//! of the `learn_all` cost formula (Thm 32's collection step).
//!
//! Each node starts with a list of words. Per round, a node broadcasts one
//! of its still-unsent words to all peers. With `K` words total spread over
//! `n` nodes, the schedule finishes in `max_i k_i` rounds — `⌈K/n⌉` when
//! balanced, which is how the algorithms use it (Lenzen routing balances
//! the load first; the ledger's `learn_all` charges `2⌈K/n⌉ + 2` to cover
//! the balancing step).

use crate::engine::{NodeProgram, RoundCtx};
use crate::message::Message;
use crate::node::NodeId;

const TAG_WORD: u16 = 7;

/// Per-node state of the all-gather program.
#[derive(Clone, Debug)]
pub struct AllGather {
    me: NodeId,
    pending: Vec<u64>,
    collected: Vec<u64>,
}

impl AllGather {
    /// Creates the program for node `me` holding `words`.
    pub fn new(me: NodeId, words: Vec<u64>) -> Self {
        AllGather {
            me,
            collected: words.clone(),
            pending: words,
        }
    }

    /// All words known to this node (own plus received), unsorted.
    pub fn collected(&self) -> &[u64] {
        &self.collected
    }
}

impl NodeProgram for AllGather {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        for env in ctx.inbox() {
            if env.msg.tag() == TAG_WORD {
                if let Some(w) = env.msg.first() {
                    self.collected.push(w);
                }
            }
        }
        if let Some(w) = self.pending.pop() {
            let _ = self.me;
            ctx.send_all(Message::word(TAG_WORD, w));
        }
    }

    fn is_done(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::model;
    use crate::engine::Engine;

    #[test]
    fn balanced_load_matches_learn_all_cost() {
        let n = 16usize;
        let per_node = 4usize;
        let nodes: Vec<AllGather> = (0..n)
            .map(|i| {
                AllGather::new(
                    NodeId::new(i),
                    (0..per_node).map(|j| (i * per_node + j) as u64).collect(),
                )
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        let k = (n * per_node) as u64;
        // With balanced load every node broadcasts one word per round, so
        // the engine reports exactly ⌈K/n⌉ = per_node communication rounds
        // (the drain step is free — see `RunStats::rounds`). The ledger
        // formula 2⌈K/n⌉ + 2 dominates it explicitly: the extra ⌈K/n⌉ + 2
        // covers the Lenzen load-balancing step the schedule presupposes.
        assert_eq!(stats.rounds, per_node as u64);
        assert!(stats.rounds <= model::learn_all(k, n as u64));
        for (i, p) in engine.nodes().iter().enumerate() {
            let mut got = p.collected().to_vec();
            got.sort_unstable();
            let want: Vec<u64> = (0..k).collect();
            assert_eq!(got, want, "node {i}");
        }
    }

    #[test]
    fn empty_holders_participate() {
        let nodes = vec![
            AllGather::new(NodeId::new(0), vec![1, 2]),
            AllGather::new(NodeId::new(1), vec![]),
            AllGather::new(NodeId::new(2), vec![3]),
        ];
        let mut engine = Engine::new(nodes);
        engine.run().unwrap();
        for p in engine.nodes() {
            let mut got = p.collected().to_vec();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3]);
        }
    }

    #[test]
    fn unbalanced_load_costs_max_holding() {
        // One node holds 6 words: rounds track the max, the motivation for
        // Lenzen-routing rebalancing in the ledger formula.
        let nodes = vec![
            AllGather::new(NodeId::new(0), (0..6).collect()),
            AllGather::new(NodeId::new(1), vec![]),
        ];
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert!(stats.rounds >= 6);
    }
}
