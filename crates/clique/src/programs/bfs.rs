//! Distributed hop-by-hop BFS over an input graph embedded in the clique.
//!
//! Each node initially knows only its incident edges (the model's local input
//! assumption). Frontier expansion takes one round per hop, so an eccentricity
//! of `ecc(s)` costs `ecc(s) + O(1)` rounds — the "first era" cost that the
//! distance-sensitive tool-kit of the paper is designed to beat.

use crate::engine::{NodeProgram, RoundCtx};
use crate::message::Message;
use crate::node::NodeId;

const TAG_DIST: u16 = 4;

/// Per-node state of the distributed BFS.
///
/// # Example
///
/// ```
/// use cc_clique::programs::DistributedBfs;
/// use cc_clique::{Engine, NodeId};
///
/// // A path 0 - 1 - 2.
/// let adjacency = vec![vec![1usize], vec![0, 2], vec![1]];
/// let nodes = adjacency
///     .iter()
///     .enumerate()
///     .map(|(i, nbrs)| {
///         DistributedBfs::new(
///             NodeId::new(i),
///             NodeId::new(0),
///             nbrs.iter().map(|&j| NodeId::new(j)).collect(),
///             None,
///         )
///     })
///     .collect();
/// let mut engine = Engine::new(nodes);
/// engine.run().unwrap();
/// assert_eq!(engine.nodes()[2].distance(), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct DistributedBfs {
    me: NodeId,
    neighbors: Vec<NodeId>,
    dist: Option<u64>,
    announced: bool,
    hop_limit: Option<u64>,
    idle_rounds: u8,
}

impl DistributedBfs {
    /// Creates BFS state for node `me` with its incident `neighbors`.
    ///
    /// `hop_limit` truncates the exploration (used to emulate `d`-hop
    /// bounded primitives); `None` explores the whole component.
    pub fn new(me: NodeId, source: NodeId, neighbors: Vec<NodeId>, hop_limit: Option<u64>) -> Self {
        DistributedBfs {
            me,
            neighbors,
            dist: if me == source { Some(0) } else { None },
            announced: false,
            hop_limit,
            idle_rounds: 0,
        }
    }

    /// The hop distance from the source discovered by this node, if reached.
    pub fn distance(&self) -> Option<u64> {
        self.dist
    }
}

impl NodeProgram for DistributedBfs {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let mut learned = false;
        for env in ctx.inbox() {
            if env.msg.tag() == TAG_DIST {
                if let Some(d) = env.msg.first() {
                    let candidate = d + 1;
                    if self.dist.is_none_or(|cur| candidate < cur) {
                        self.dist = Some(candidate);
                        self.announced = false;
                        learned = true;
                    }
                }
            }
        }
        if let Some(d) = self.dist {
            if !self.announced {
                let within_limit = self.hop_limit.is_none_or(|limit| d < limit);
                if within_limit {
                    for &nbr in &self.neighbors {
                        if nbr != self.me {
                            ctx.send(nbr, Message::word(TAG_DIST, d));
                        }
                    }
                }
                // A node at the hop limit has nothing to announce; mark it
                // settled either way so termination is reached.
                self.announced = true;
                self.idle_rounds = 0;
                return;
            }
        }
        if !learned {
            self.idle_rounds = self.idle_rounds.saturating_add(1);
        }
    }

    fn is_done(&self) -> bool {
        // Done once settled: either announced (and nothing new arrived for a
        // couple of rounds) or unreachable so far. Global termination is the
        // engine's no-inflight-messages condition combined with this.
        self.dist.is_none() || self.announced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn run_bfs(adj: &[Vec<usize>], source: usize, hop_limit: Option<u64>) -> Vec<Option<u64>> {
        let nodes: Vec<DistributedBfs> = adj
            .iter()
            .enumerate()
            .map(|(i, nbrs)| {
                DistributedBfs::new(
                    NodeId::new(i),
                    NodeId::new(source),
                    nbrs.iter().map(|&j| NodeId::new(j)).collect(),
                    hop_limit,
                )
            })
            .collect();
        let mut engine = Engine::new(nodes);
        engine.run().unwrap();
        engine.into_nodes().iter().map(|p| p.distance()).collect()
    }

    #[test]
    fn path_graph_distances() {
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let d = run_bfs(&adj, 0, None);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn disconnected_node_unreached() {
        let adj = vec![vec![1], vec![0], vec![]];
        let d = run_bfs(&adj, 0, None);
        assert_eq!(d[2], None);
    }

    #[test]
    fn hop_limit_truncates() {
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let d = run_bfs(&adj, 0, Some(2));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
    }

    #[test]
    fn cycle_takes_shorter_arc() {
        // 6-cycle: distance from 0 to 3 is 3, to 5 is 1.
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n, (i + n - 1) % n]).collect();
        let d = run_bfs(&adj, 0, None);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn rounds_track_eccentricity() {
        let len = 12;
        let adj: Vec<Vec<usize>> = (0..len)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < len {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        let nodes: Vec<DistributedBfs> = adj
            .iter()
            .enumerate()
            .map(|(i, nbrs)| {
                DistributedBfs::new(
                    NodeId::new(i),
                    NodeId::new(0),
                    nbrs.iter().map(|&j| NodeId::new(j)).collect(),
                    None,
                )
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        // BFS over a path of length 11 needs ≥ 11 rounds: hop-by-hop is slow,
        // which is exactly the motivation for the paper's bounded tools.
        assert!(stats.rounds as usize >= len - 1);
        assert!(stats.rounds as usize <= len + 3);
    }
}
