//! Real distributed programs for the message engine.
//!
//! These programs exercise the Congested Clique model end-to-end: every one
//! of them is implemented purely in terms of per-node state and per-round
//! messages, with the engine enforcing the bandwidth constraints. They serve
//! three purposes:
//!
//! 1. validate the engine itself,
//! 2. ground the constants of the cost formulas in [`crate::cost::model`]
//!    (e.g. broadcast is one round, min-aggregation is two, routing with
//!    balanced load is `O(1)`),
//! 3. provide small end-to-end demos (`examples/distributed_engine.rs`).

mod aggregate;
mod allgather;
mod bfs;
mod broadcast;
mod routing;

pub use aggregate::MinAggregate;
pub use allgather::AllGather;
pub use bfs::DistributedBfs;
pub use broadcast::Broadcast;
pub use routing::{RoutedWord, TwoPhaseRouting};
