//! Single-source broadcast: one round, `n − 1` messages.

use crate::engine::{NodeProgram, RoundCtx};
use crate::message::Message;
use crate::node::NodeId;

const TAG: u16 = 1;

/// Broadcast of one word from a designated source to all nodes.
///
/// In the Congested Clique a node may message every peer in a single round,
/// so broadcast completes in exactly one round — the constant behind
/// [`crate::cost::model::broadcast_one`].
///
/// # Example
///
/// ```
/// use cc_clique::programs::Broadcast;
/// use cc_clique::{Engine, NodeId};
///
/// let nodes = (0..8)
///     .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(3), 99))
///     .collect();
/// let mut engine = Engine::new(nodes);
/// let stats = engine.run().unwrap();
/// assert_eq!(stats.messages, 7);
/// assert!(engine.nodes().iter().all(|p| p.received() == Some(99)));
/// ```
#[derive(Clone, Debug)]
pub struct Broadcast {
    me: NodeId,
    source: NodeId,
    value: u64,
    received: Option<u64>,
    sent: bool,
}

impl Broadcast {
    /// Creates the program state for node `me`; `value` is meaningful only at
    /// the `source` node.
    pub fn new(me: NodeId, source: NodeId, value: u64) -> Self {
        Broadcast {
            me,
            source,
            value,
            received: if me == source { Some(value) } else { None },
            sent: false,
        }
    }

    /// The value this node has learned, if any.
    pub fn received(&self) -> Option<u64> {
        self.received
    }
}

impl NodeProgram for Broadcast {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.me == self.source && !self.sent {
            ctx.send_all(Message::word(TAG, self.value));
            self.sent = true;
        }
        for env in ctx.inbox() {
            if env.msg.tag() == TAG {
                self.received = env.msg.first();
            }
        }
    }

    fn is_done(&self) -> bool {
        self.me != self.source || self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn completes_in_one_round() {
        let n = 16;
        let nodes = (0..n)
            .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(0), 7))
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        // Exactly one communication round — the constant the ledger charges
        // via `model::broadcast_one`; the engine's trailing drain step is
        // free local computation (see `RunStats::rounds`).
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, (n - 1) as u64);
        for p in engine.nodes() {
            assert_eq!(p.received(), Some(7));
        }
    }

    #[test]
    fn non_source_value_is_ignored() {
        let nodes = vec![
            Broadcast::new(NodeId::new(0), NodeId::new(1), 5),
            Broadcast::new(NodeId::new(1), NodeId::new(1), 11),
        ];
        let mut engine = Engine::new(nodes);
        engine.run().unwrap();
        assert_eq!(engine.nodes()[0].received(), Some(11));
    }
}
