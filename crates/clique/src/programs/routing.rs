//! Two-phase (Valiant-style) routing: the randomized cousin of Lenzen's
//! deterministic routing \[Lenzen, PODC 2013\].
//!
//! Every node starts with a multiset of `(destination, payload)` words, with
//! per-node send and receive load at most `L`. Phase 1 forwards each word to
//! a uniformly random intermediate node; phase 2 delivers it. Each node may
//! send only one word per peer per round, so congested links queue; with
//! balanced loads the whole schedule completes in `O(⌈L/n⌉)` rounds w.h.p.,
//! matching [`crate::cost::model::lenzen_route`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{NodeProgram, RoundCtx};
use crate::message::Message;
use crate::node::NodeId;

const TAG_FORWARD: u16 = 5;
const TAG_DELIVER: u16 = 6;

/// A word to be routed to a destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoutedWord {
    /// Final destination.
    pub dest: NodeId,
    /// Payload word.
    pub payload: u64,
}

/// Per-node state of the two-phase routing protocol.
#[derive(Clone, Debug)]
pub struct TwoPhaseRouting {
    me: NodeId,
    /// Words still waiting to leave this node toward an intermediate.
    outgoing: Vec<(NodeId, RoutedWord)>,
    /// Words held as intermediate, waiting to reach their destination.
    relay: Vec<RoutedWord>,
    delivered: Vec<u64>,
    rng: StdRng,
}

impl TwoPhaseRouting {
    /// Creates routing state for node `me` with its initial `words`.
    ///
    /// `n` is the clique size and `seed` makes intermediate choices
    /// reproducible.
    pub fn new(me: NodeId, n: usize, words: Vec<RoutedWord>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9));
        let outgoing = words
            .into_iter()
            .map(|w| {
                // Choose a random intermediate different from `me`.
                let mut inter = rng.gen_range(0..n);
                if inter == me.index() {
                    inter = (inter + 1) % n;
                }
                (NodeId::new(inter), w)
            })
            .collect();
        TwoPhaseRouting {
            me,
            outgoing,
            relay: Vec::new(),
            delivered: Vec::new(),
            rng,
        }
    }

    /// Payload words delivered to this node (in arrival order).
    pub fn delivered(&self) -> &[u64] {
        &self.delivered
    }
}

impl NodeProgram for TwoPhaseRouting {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // Receive.
        for env in ctx.inbox() {
            match env.msg.tag() {
                TAG_FORWARD => {
                    let words = env.msg.words();
                    if words.len() == 2 {
                        self.relay.push(RoutedWord {
                            dest: NodeId::new(words[0] as usize),
                            payload: words[1],
                        });
                    }
                }
                TAG_DELIVER => {
                    if let Some(p) = env.msg.first() {
                        self.delivered.push(p);
                    }
                }
                _ => {}
            }
        }
        // Send: one word per destination per round, preferring deliveries.
        let n = ctx.n();
        let mut used = vec![false; n];
        let mut kept_relay = Vec::new();
        // Shuffle-ish: rotate queue start to avoid starvation.
        if !self.relay.is_empty() {
            let cut = self.rng.gen_range(0..self.relay.len());
            self.relay.rotate_left(cut);
        }
        for w in self.relay.drain(..) {
            if w.dest == self.me {
                self.delivered.push(w.payload);
            } else if !used[w.dest.index()] {
                used[w.dest.index()] = true;
                ctx.send(w.dest, Message::word(TAG_DELIVER, w.payload));
            } else {
                kept_relay.push(w);
            }
        }
        self.relay = kept_relay;
        let mut kept_out = Vec::new();
        for (inter, w) in self.outgoing.drain(..) {
            if inter == self.me {
                self.relay.push(w);
            } else if !used[inter.index()] {
                used[inter.index()] = true;
                ctx.send(
                    inter,
                    Message::pair(TAG_FORWARD, w.dest.raw() as u64, w.payload),
                );
            } else {
                kept_out.push((inter, w));
            }
        }
        self.outgoing = kept_out;
    }

    fn is_done(&self) -> bool {
        self.outgoing.is_empty() && self.relay.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// All-to-all permutation routing: node i sends one word to each node.
    #[test]
    fn balanced_load_routes_in_constant_rounds() {
        let n = 24;
        let nodes: Vec<TwoPhaseRouting> = (0..n)
            .map(|i| {
                let words = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| RoutedWord {
                        dest: NodeId::new(j),
                        payload: (i * 1000 + j) as u64,
                    })
                    .collect();
                TwoPhaseRouting::new(NodeId::new(i), n, words, 42)
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        // Load L = n − 1 per node: expect O(1) rounds (small constant).
        assert!(stats.rounds <= 20, "rounds = {}", stats.rounds);
        for (j, p) in engine.nodes().iter().enumerate() {
            assert_eq!(p.delivered().len(), n - 1, "node {j}");
            let mut got: Vec<u64> = p.delivered().to_vec();
            got.sort_unstable();
            let mut want: Vec<u64> = (0..n)
                .filter(|&i| i != j)
                .map(|i| (i * 1000 + j) as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "node {j}");
        }
    }

    /// Skewed load: one node receives L = 4n words; rounds stay O(L/n).
    #[test]
    fn skewed_load_scales_linearly() {
        let n = 16;
        let per_sender = 4; // total received by node 0: 4·(n−1) ≈ 4n
        let nodes: Vec<TwoPhaseRouting> = (0..n)
            .map(|i| {
                let words = if i == 0 {
                    Vec::new()
                } else {
                    (0..per_sender)
                        .map(|k| RoutedWord {
                            dest: NodeId::new(0),
                            payload: (i * 100 + k) as u64,
                        })
                        .collect()
                };
                TwoPhaseRouting::new(NodeId::new(i), n, words, 7)
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(engine.nodes()[0].delivered().len(), per_sender * (n - 1));
        // Receive bottleneck is ~4(n−1)/ n per round → ≥ per_sender rounds.
        assert!(stats.rounds as usize >= per_sender);
        assert!(
            stats.rounds as usize <= 8 * per_sender + 8,
            "rounds = {}",
            stats.rounds
        );
    }

    #[test]
    fn empty_input_terminates_immediately() {
        let nodes: Vec<TwoPhaseRouting> = (0..4)
            .map(|i| TwoPhaseRouting::new(NodeId::new(i), 4, Vec::new(), 1))
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }
}
