//! Node identifiers.

use std::fmt;

/// Identifier of a node in an `n`-node Congested Clique.
///
/// A thin newtype over a dense index in `0..n`. Using a dedicated type keeps
/// node indices from being confused with distances, counts, or matrix
/// dimensions in algorithm code.
///
/// # Example
///
/// ```
/// use cc_clique::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 65535] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(usize::from(NodeId::from(i)), i);
        }
    }

    #[test]
    fn ordering_matches_index() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
    }
}
