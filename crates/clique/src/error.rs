//! Error types for the message engine.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors raised by the synchronous message engine when a program violates
/// the Congested Clique model or fails to terminate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// A node attempted to send two messages to the same destination in one
    /// round. The model allows one message per ordered pair per round.
    DuplicateMessage {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u64,
    },
    /// A message exceeded the configured per-message word budget
    /// (the `O(log n)` bandwidth constraint).
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Words in the offending message.
        words: usize,
        /// Configured maximum words per message.
        max_words: usize,
    },
    /// A node addressed a message to itself or to a node outside `0..n`.
    InvalidDestination {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Number of nodes in the clique.
        n: usize,
    },
    /// The program did not terminate within the configured round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// In Broadcast Congested Clique mode, a node sent two *different*
    /// messages in the same round (the model requires one message per node
    /// per round, sent to everyone).
    BroadcastViolation {
        /// Sending node.
        from: NodeId,
        /// Round in which the violation occurred.
        round: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateMessage { from, to, round } => write!(
                f,
                "duplicate message from {from} to {to} in round {round}: the model allows one message per ordered pair per round"
            ),
            EngineError::BandwidthExceeded {
                from,
                to,
                words,
                max_words,
            } => write!(
                f,
                "message from {from} to {to} carries {words} words, exceeding the {max_words}-word bandwidth budget"
            ),
            EngineError::InvalidDestination { from, to, n } => write!(
                f,
                "invalid destination {to} for message from {from} in an {n}-node clique"
            ),
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "program did not terminate within {limit} rounds")
            }
            EngineError::BroadcastViolation { from, round } => write!(
                f,
                "node {from} sent distinct messages in round {round}: the Broadcast Congested Clique allows one message per node per round"
            ),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = EngineError::DuplicateMessage {
            from: NodeId::new(1),
            to: NodeId::new(2),
            round: 3,
        };
        assert!(e.to_string().contains("duplicate"));
        let e = EngineError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
