//! Messages and envelopes exchanged by the message engine.

use crate::node::NodeId;

/// A single Congested Clique message.
///
/// A message carries a small `tag` (protocol-level discriminator) and a
/// payload of machine *words*. Each word stands for an `O(log n)`-bit
/// quantity (a node identifier, a distance, a counter). The engine bounds the
/// number of words per message ([`crate::EngineConfig::max_words`]), which is
/// the simulator's concrete rendering of the model's `O(log n)`-bit bandwidth
/// constraint.
///
/// # Example
///
/// ```
/// use cc_clique::Message;
///
/// let msg = Message::new(1, vec![42, 7]);
/// assert_eq!(msg.words(), &[42, 7]);
/// assert_eq!(msg.word_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    tag: u16,
    words: Vec<u64>,
}

impl Message {
    /// Creates a message with the given protocol tag and payload words.
    pub fn new(tag: u16, words: Vec<u64>) -> Self {
        Message { tag, words }
    }

    /// Creates a message carrying a single word.
    pub fn word(tag: u16, word: u64) -> Self {
        Message {
            tag,
            words: vec![word],
        }
    }

    /// Creates an empty (signal-only) message.
    pub fn signal(tag: u16) -> Self {
        Message {
            tag,
            words: Vec::new(),
        }
    }

    /// The protocol tag.
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of payload words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// First payload word, if present.
    pub fn first(&self) -> Option<u64> {
        self.words.first().copied()
    }
}

/// A message together with its sender, as delivered to a node's inbox.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// The node that sent the message.
    pub from: NodeId,
    /// The message itself.
    pub msg: Message,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(from: NodeId, msg: Message) -> Self {
        Envelope { from, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Message::new(3, vec![1, 2, 3]);
        assert_eq!(m.tag(), 3);
        assert_eq!(m.word_count(), 3);
        assert_eq!(m.first(), Some(1));
    }

    #[test]
    fn signal_has_no_words() {
        let m = Message::signal(9);
        assert_eq!(m.word_count(), 0);
        assert_eq!(m.first(), None);
    }

    #[test]
    fn envelope_retains_sender() {
        let e = Envelope::new(NodeId::new(4), Message::word(0, 99));
        assert_eq!(e.from.index(), 4);
        assert_eq!(e.msg.first(), Some(99));
    }
}
