//! Messages exchanged by the message engine.

/// Payload words stored inline when they fit in the common case.
///
/// The engine's default bandwidth budget is 4 words
/// ([`crate::EngineConfig::max_words`]), so almost every legal message fits
/// inline and carries no heap allocation; larger payloads (used by tests that
/// probe bandwidth enforcement) spill to a `Vec`.
const INLINE_WORDS: usize = 4;

#[derive(Clone, Debug)]
enum Payload {
    /// `len ≤ INLINE_WORDS` words stored in place; unused slots are zero.
    Inline { len: u8, words: [u64; INLINE_WORDS] },
    /// Oversized payloads (beyond the inline budget) on the heap.
    Heap(Vec<u64>),
}

/// A single Congested Clique message.
///
/// A message carries a small `tag` (protocol-level discriminator) and a
/// payload of machine *words*. Each word stands for an `O(log n)`-bit
/// quantity (a node identifier, a distance, a counter). The engine bounds the
/// number of words per message ([`crate::EngineConfig::max_words`]), which is
/// the simulator's concrete rendering of the model's `O(log n)`-bit bandwidth
/// constraint.
///
/// Payloads of at most four words (every message within the default
/// bandwidth budget) are stored inline, so constructing, cloning, and
/// delivering such messages performs no heap allocation — the property the
/// flat-mailbox engine relies on for allocation-free steady-state rounds.
///
/// # Example
///
/// ```
/// use cc_clique::Message;
///
/// let msg = Message::new(1, vec![42, 7]);
/// assert_eq!(msg.words(), &[42, 7]);
/// assert_eq!(msg.word_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Message {
    tag: u16,
    payload: Payload,
}

impl Message {
    /// Creates a message with the given protocol tag and payload words.
    pub fn new(tag: u16, words: Vec<u64>) -> Self {
        let payload = if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(&words);
            Payload::Inline {
                len: words.len() as u8,
                words: inline,
            }
        } else {
            Payload::Heap(words)
        };
        Message { tag, payload }
    }

    /// Creates a message carrying a single word (allocation-free).
    pub fn word(tag: u16, word: u64) -> Self {
        let mut words = [0u64; INLINE_WORDS];
        words[0] = word;
        Message {
            tag,
            payload: Payload::Inline { len: 1, words },
        }
    }

    /// Creates a message carrying two words (allocation-free).
    pub fn pair(tag: u16, a: u64, b: u64) -> Self {
        let mut words = [0u64; INLINE_WORDS];
        words[0] = a;
        words[1] = b;
        Message {
            tag,
            payload: Payload::Inline { len: 2, words },
        }
    }

    /// Creates an empty (signal-only) message (allocation-free).
    pub fn signal(tag: u16) -> Self {
        Message {
            tag,
            payload: Payload::Inline {
                len: 0,
                words: [0u64; INLINE_WORDS],
            },
        }
    }

    /// The protocol tag.
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        match &self.payload {
            Payload::Inline { len, words } => &words[..*len as usize],
            Payload::Heap(words) => words,
        }
    }

    /// Number of payload words.
    pub fn word_count(&self) -> usize {
        match &self.payload {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Heap(words) => words.len(),
        }
    }

    /// First payload word, if present.
    pub fn first(&self) -> Option<u64> {
        self.words().first().copied()
    }
}

// Equality and hashing go through the logical word slice so that an inline
// and a (hypothetical) heap representation of the same payload compare equal
// regardless of unused inline slots.
impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && self.words() == other.words()
    }
}

impl Eq for Message {}

impl std::hash::Hash for Message {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tag.hash(state);
        self.words().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Message::new(3, vec![1, 2, 3]);
        assert_eq!(m.tag(), 3);
        assert_eq!(m.word_count(), 3);
        assert_eq!(m.first(), Some(1));
    }

    #[test]
    fn signal_has_no_words() {
        let m = Message::signal(9);
        assert_eq!(m.word_count(), 0);
        assert_eq!(m.first(), None);
    }

    #[test]
    fn pair_carries_two_words() {
        let m = Message::pair(2, 10, 20);
        assert_eq!(m.words(), &[10, 20]);
    }

    #[test]
    fn inline_and_heap_agree() {
        // ≤ 4 words stays inline, > 4 spills; the API is identical.
        let small = Message::new(1, vec![1, 2, 3, 4]);
        let big = Message::new(1, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(small.word_count(), 4);
        assert_eq!(big.word_count(), 6);
        assert_eq!(big.words()[5], 6);
    }

    #[test]
    fn equality_ignores_representation() {
        assert_eq!(Message::word(1, 7), Message::new(1, vec![7]));
        assert_ne!(Message::word(1, 7), Message::word(2, 7));
        assert_ne!(Message::word(1, 7), Message::word(1, 8));
        assert_ne!(Message::signal(0), Message::word(0, 0));
    }

    #[test]
    fn hash_matches_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |m: &Message| {
            let mut s = DefaultHasher::new();
            m.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Message::word(1, 7)), h(&Message::new(1, vec![7])));
    }
}
