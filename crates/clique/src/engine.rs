//! Synchronous message-passing engine.
//!
//! The engine runs one [`NodeProgram`] instance per node in lock-step rounds.
//! In each round every node observes the messages delivered to it in the
//! previous round and emits at most one bounded-width message per destination
//! — exactly the Congested Clique contract. Violations are reported as
//! [`EngineError`]s rather than silently tolerated, so tests can assert that
//! programs respect the model.

use crate::error::EngineError;
use crate::message::{Envelope, Message};
use crate::node::NodeId;

/// Configuration of the message engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum payload words per message (the `O(log n)`-bit budget; a word
    /// stands for one `Θ(log n)`-bit quantity).
    pub max_words: usize,
    /// Hard bound on rounds before aborting with
    /// [`EngineError::RoundLimitExceeded`].
    pub max_rounds: u64,
    /// Enforce the **Broadcast** Congested Clique (Becker et al.; footnote 1
    /// of the paper): each node must send the *same* message to every peer
    /// it addresses in a round. Violations raise
    /// [`EngineError::BroadcastViolation`].
    pub broadcast_only: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_words: 4,
            max_rounds: 1_000_000,
            broadcast_only: false,
        }
    }
}

/// Per-round context handed to a node.
///
/// Provides the node's identity, the clique size, the current round number,
/// the inbox of messages delivered this round, and the `send` operation.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    me: NodeId,
    n: usize,
    round: u64,
    inbox: &'a [Envelope],
    outbox: Vec<(NodeId, Message)>,
}

impl<'a> RoundCtx<'a> {
    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (first round is 1).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Messages delivered to this node at the start of this round.
    pub fn inbox(&self) -> &'a [Envelope] {
        self.inbox
    }

    /// Queues a message to `to`, to be delivered at the start of the next
    /// round. Model constraints (single message per destination, bandwidth)
    /// are checked by the engine when the round ends.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        self.outbox.push((to, msg));
    }

    /// Queues the same message to every other node (a broadcast).
    pub fn send_all(&mut self, msg: Message) {
        for i in 0..self.n {
            if i != self.me.index() {
                self.outbox.push((NodeId::new(i), msg.clone()));
            }
        }
    }
}

/// A distributed program run by each node of the clique.
///
/// Implementations are state machines: `on_round` is invoked once per round
/// with the node's inbox, and the program signals termination through
/// `is_done`. The engine stops when all nodes are done and no messages are in
/// flight.
pub trait NodeProgram {
    /// Executes one round at this node.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Whether this node has terminated (it may still receive messages; a
    /// done node's `on_round` is still called while others run).
    fn is_done(&self) -> bool;
}

/// Statistics of a completed engine run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunStats {
    /// Rounds executed until global termination.
    pub rounds: u64,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Maximum messages received by any single node in any round.
    pub max_in_degree: u64,
}

/// The synchronous engine: owns one program instance per node.
#[derive(Debug)]
pub struct Engine<P> {
    nodes: Vec<P>,
    config: EngineConfig,
}

impl<P: NodeProgram> Engine<P> {
    /// Creates an engine over the given per-node programs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<P>) -> Self {
        Engine::with_config(nodes, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn with_config(nodes: Vec<P>, config: EngineConfig) -> Self {
        assert!(!nodes.is_empty(), "clique must have at least one node");
        Engine { nodes, config }
    }

    /// Runs the program to global termination.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] if a node violates the model (duplicate
    /// destination or oversized message) or the round limit is hit.
    pub fn run(&mut self) -> Result<RunStats, EngineError> {
        let n = self.nodes.len();
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        let mut round = 0u64;
        let mut messages = 0u64;
        let mut max_in_degree = 0u64;

        loop {
            let inflight: usize = inboxes.iter().map(Vec::len).sum();
            if inflight == 0 && self.nodes.iter().all(NodeProgram::is_done) {
                return Ok(RunStats {
                    rounds: round,
                    messages,
                    max_in_degree,
                });
            }
            if round >= self.config.max_rounds {
                return Err(EngineError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            let mut next_inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let me = NodeId::new(i);
                let mut ctx = RoundCtx {
                    me,
                    n,
                    round,
                    inbox: &inboxes[i],
                    outbox: Vec::new(),
                };
                node.on_round(&mut ctx);
                let outbox = ctx.outbox;
                if self.config.broadcast_only {
                    if let Some((_, first)) = outbox.first() {
                        if outbox.iter().any(|(_, msg)| msg != first) {
                            return Err(EngineError::BroadcastViolation { from: me, round });
                        }
                    }
                }
                let mut sent_to = vec![false; n];
                for (to, msg) in outbox {
                    if to == me || to.index() >= n {
                        return Err(EngineError::InvalidDestination { from: me, to, n });
                    }
                    if sent_to[to.index()] {
                        return Err(EngineError::DuplicateMessage {
                            from: me,
                            to,
                            round,
                        });
                    }
                    if msg.word_count() > self.config.max_words {
                        return Err(EngineError::BandwidthExceeded {
                            from: me,
                            to,
                            words: msg.word_count(),
                            max_words: self.config.max_words,
                        });
                    }
                    sent_to[to.index()] = true;
                    messages += 1;
                    next_inboxes[to.index()].push(Envelope::new(me, msg));
                }
            }
            for inbox in &next_inboxes {
                max_in_degree = max_in_degree.max(inbox.len() as u64);
            }
            inboxes = next_inboxes;
        }
    }

    /// Immutable access to the per-node programs (for reading outputs after
    /// [`run`](Engine::run)).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine and returns the node programs.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A program where node 0 sends one word to node 1, then everyone stops.
    struct OneShot {
        me: usize,
        got: Option<u64>,
        sent: bool,
    }

    impl NodeProgram for OneShot {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if self.me == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::word(0, 42));
                self.sent = true;
            }
            if let Some(env) = ctx.inbox().first() {
                self.got = env.msg.first();
            }
        }

        fn is_done(&self) -> bool {
            self.me != 0 || self.sent
        }
    }

    #[test]
    fn delivers_in_one_round() {
        let nodes = (0..4)
            .map(|me| OneShot {
                me,
                got: None,
                sent: false,
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.messages, 1);
        // Round 1 sends; round 2 delivers (the run loop counts both).
        assert_eq!(stats.rounds, 2);
        assert_eq!(engine.nodes()[1].got, Some(42));
        assert_eq!(engine.nodes()[2].got, None);
    }

    /// A malicious program that double-sends from node 0.
    struct DoubleSender {
        fired: bool,
    }

    impl NodeProgram for DoubleSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.fired {
                ctx.send(NodeId::new(1), Message::word(0, 1));
                ctx.send(NodeId::new(1), Message::word(0, 2));
                self.fired = true;
            }
        }

        fn is_done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn duplicate_message_is_rejected() {
        // Node 0 is pending (will fire); peers are pre-done.
        let nodes = vec![
            DoubleSender { fired: false },
            DoubleSender { fired: true },
            DoubleSender { fired: true },
        ];
        let mut engine = Engine::new(nodes);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::DuplicateMessage { .. }));
    }

    /// Program that sends an oversized message.
    struct FatSender {
        sent: bool,
    }

    impl NodeProgram for FatSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::new(0, vec![0; 64]));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn oversized_message_is_rejected() {
        let nodes = vec![FatSender { sent: false }, FatSender { sent: true }];
        let mut engine = Engine::new(nodes);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { .. }));
    }

    /// Program that never terminates.
    struct Spinner;

    impl NodeProgram for Spinner {
        fn on_round(&mut self, _ctx: &mut RoundCtx<'_>) {}

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let mut engine = Engine::with_config(
            vec![Spinner, Spinner],
            EngineConfig {
                max_words: 4,
                max_rounds: 10,
                broadcast_only: false,
            },
        );
        let err = engine.run().unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    /// Program that sends distinct messages to distinct peers.
    struct Unicast {
        sent: bool,
    }

    impl NodeProgram for Unicast {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::word(0, 1));
                ctx.send(NodeId::new(2), Message::word(0, 2));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn broadcast_mode_rejects_unicast() {
        let nodes = vec![
            Unicast { sent: false },
            Unicast { sent: true },
            Unicast { sent: true },
        ];
        let mut engine = Engine::with_config(
            nodes,
            EngineConfig {
                max_words: 4,
                max_rounds: 100,
                broadcast_only: true,
            },
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::BroadcastViolation { .. }));
    }

    #[test]
    fn broadcast_mode_accepts_uniform_sends() {
        use crate::programs::Broadcast as BcastProgram;
        let nodes = (0..6)
            .map(|i| BcastProgram::new(NodeId::new(i), NodeId::new(0), 11))
            .collect();
        let mut engine = Engine::with_config(
            nodes,
            EngineConfig {
                max_words: 4,
                max_rounds: 100,
                broadcast_only: true,
            },
        );
        engine.run().expect("uniform sends are legal broadcasts");
        assert!(engine.nodes().iter().all(|p| p.received() == Some(11)));
    }

    /// Self-sends are invalid destinations.
    struct SelfSender {
        sent: bool,
    }

    impl NodeProgram for SelfSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if !self.sent {
                let me = ctx.me();
                ctx.send(me, Message::signal(0));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn self_send_is_rejected() {
        let mut engine = Engine::new(vec![SelfSender { sent: false }, SelfSender { sent: true }]);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::InvalidDestination { .. }));
    }
}
