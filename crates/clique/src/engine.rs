//! Synchronous message-passing engine over a flat, preallocated mailbox.
//!
//! The engine runs one [`NodeProgram`] instance per node in lock-step rounds.
//! In each round every node observes the messages delivered to it in the
//! previous round and emits at most one bounded-width message per destination
//! — exactly the Congested Clique contract. Violations are reported as
//! [`EngineError`]s rather than silently tolerated, so tests can assert that
//! programs respect the model.
//!
//! # Flat double-buffered mailbox
//!
//! Messages live in two flat mailboxes (`n × n` unicast slot rows plus one
//! broadcast slot per sender) that are swapped at the end of every round:
//! one holds the messages delivered this round (read-only), the other
//! collects the messages sent this round. Occupancy is tracked by per-slot
//! *generation counters* (the round number the slot was last written in), so
//! clearing a mailbox is free and steady-state rounds perform **zero heap
//! allocation**. Storage is source-major: every sender owns a flat slot row
//! indexed by destination — materialized on its first unicast and reused for
//! the rest of the run, so broadcast-dominated programs never pay for `n²`
//! slots — which gives every node an exclusive write region, the property
//! sharded execution relies on. A cache-resident per-sender generation array
//! lets receivers skip the rows of senders that were silent in a round.
//!
//! [`RoundCtx::send_all`] takes a broadcast fast path: the payload is stored
//! once in the sender's broadcast slot instead of being cloned `n − 1` times,
//! so an allgather round costs `O(n)` slot writes rather than `Θ(n²)`
//! message clones.
//!
//! # Sharded parallel execution
//!
//! With [`EngineConfig::threads`] `> 1`, nodes are partitioned into
//! contiguous shards executed by scoped worker threads. Each worker writes
//! only its own nodes' rows and broadcast slots of the next mailbox and reads
//! the (immutable) current mailbox, so no locks are needed. Per-node program
//! state, slot writes, and per-worker receive tallies are all isolated or
//! order-independent, and model-violation errors are reported for the lowest
//! offending node id — results are therefore **bit-identical** to serial
//! execution.
//!
//! # Round accounting
//!
//! See [`RunStats::rounds`]: the engine counts *communication* rounds. The
//! final drain step, in which delivered messages are consumed but nothing is
//! sent, is local computation and free in the model.

use crate::error::EngineError;
use crate::message::Message;
use crate::node::NodeId;

/// Configuration of the message engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum payload words per message (the `O(log n)`-bit budget; a word
    /// stands for one `Θ(log n)`-bit quantity).
    pub max_words: usize,
    /// Hard bound on rounds before aborting with
    /// [`EngineError::RoundLimitExceeded`].
    pub max_rounds: u64,
    /// Enforce the **Broadcast** Congested Clique (Becker et al.; footnote 1
    /// of the paper): each node must send the *same* message to every peer
    /// it addresses in a round. Violations raise
    /// [`EngineError::BroadcastViolation`].
    pub broadcast_only: bool,
    /// Worker threads for node execution (`0` and `1` both mean serial).
    /// Sharded execution is deterministic: results are bit-identical to
    /// serial runs for any thread count.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_words: 4,
            max_rounds: 1_000_000,
            broadcast_only: false,
            threads: 1,
        }
    }
}

impl EngineConfig {
    /// The default configuration with `threads` worker threads.
    pub fn threaded(threads: usize) -> Self {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }
}

/// Generation value that never matches a round number (rounds start at 1 and
/// are bounded by `max_rounds`), marking a slot as never written.
const EMPTY_GEN: u64 = u64::MAX;

/// One mailbox slot: the message last written and the round (generation) it
/// was written in. A slot is occupied for round `r` readers iff `gen == r`.
#[derive(Debug)]
struct Slot {
    gen: u64,
    msg: Message,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            gen: EMPTY_GEN,
            msg: Message::signal(0),
        }
    }
}

/// A flat message plane: one length-`n` unicast slot row per sender plus one
/// broadcast slot per sender.
///
/// Rows are materialized lazily on a sender's first unicast and then reused
/// for the rest of the run, so broadcast-only programs never pay for `n²`
/// slots and steady-state rounds are allocation-free either way. The
/// cache-resident `uni_last` generation array lets receivers skip the row
/// probe for every sender that did not unicast in the delivered round.
#[derive(Debug)]
struct Mailbox {
    n: usize,
    /// Unicast slot rows, one per sender (`rows[from][to]`); empty until the
    /// sender's first unicast, then length `n` for the rest of the run.
    rows: Vec<Vec<Slot>>,
    /// Generation of each sender's last unicast (`EMPTY_GEN` if none yet).
    uni_last: Vec<u64>,
    /// Broadcast slots, one per sender; a broadcast is stored once and read
    /// by all `n − 1` receivers.
    bcast: Vec<Slot>,
}

impl Mailbox {
    fn new(n: usize) -> Self {
        Mailbox {
            n,
            rows: std::iter::repeat_with(Vec::new).take(n).collect(),
            uni_last: vec![EMPTY_GEN; n],
            bcast: std::iter::repeat_with(Slot::empty).take(n).collect(),
        }
    }
}

/// A message delivered to a node's inbox, borrowed from the mailbox.
#[derive(Clone, Copy, Debug)]
pub struct Delivery<'a> {
    /// The node that sent the message.
    pub from: NodeId,
    /// The message itself.
    pub msg: &'a Message,
}

/// Iterator over a node's inbox, in ascending sender order.
#[derive(Debug)]
pub struct InboxIter<'a> {
    mailbox: &'a Mailbox,
    me: usize,
    gen: u64,
    from: usize,
}

impl<'a> Iterator for InboxIter<'a> {
    type Item = Delivery<'a>;

    fn next(&mut self) -> Option<Delivery<'a>> {
        let n = self.mailbox.n;
        while self.from < n {
            let from = self.from;
            self.from += 1;
            if from == self.me {
                continue;
            }
            // A sender either unicast to us or broadcast (never both: the
            // duplicate check rejects mixing), so at most one slot matches.
            let b = &self.mailbox.bcast[from];
            if b.gen == self.gen {
                return Some(Delivery {
                    from: NodeId::new(from),
                    msg: &b.msg,
                });
            }
            if self.mailbox.uni_last[from] == self.gen {
                let slot = &self.mailbox.rows[from][self.me];
                if slot.gen == self.gen {
                    return Some(Delivery {
                        from: NodeId::new(from),
                        msg: &slot.msg,
                    });
                }
            }
        }
        None
    }
}

/// Per-round context handed to a node.
///
/// Provides the node's identity, the clique size, the current round number,
/// the inbox of messages delivered this round, and the `send` operation.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    me: NodeId,
    n: usize,
    round: u64,
    cur: &'a Mailbox,
    out_row: &'a mut Vec<Slot>,
    out_uni_last: &'a mut u64,
    out_bcast: &'a mut Slot,
    recv_counts: &'a mut [u32],
    sent: u32,
    first_sent: Option<usize>,
    err: Option<EngineError>,
    max_words: usize,
    broadcast_only: bool,
}

impl<'a> RoundCtx<'a> {
    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (first round is 1).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Messages delivered to this node at the start of this round, in
    /// ascending sender order.
    pub fn inbox(&self) -> InboxIter<'a> {
        InboxIter {
            mailbox: self.cur,
            me: self.me.index(),
            // Messages read this round were written in the previous one.
            // Round 1 reads generation 0, which no slot ever carries.
            gen: self.round - 1,
            from: 0,
        }
    }

    /// Queues a message to `to`, to be delivered at the start of the next
    /// round. Model constraints (single message per destination, bandwidth,
    /// broadcast uniformity) are checked immediately as O(1) slot-write
    /// checks; the first violation aborts the run once the round ends.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.try_send(to, msg) {
            self.err = Some(e);
        }
    }

    /// Queues the same message to every other node (a broadcast). The
    /// payload is stored once; receivers read it by reference.
    pub fn send_all(&mut self, msg: Message) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.try_send_all(msg) {
            self.err = Some(e);
        }
    }

    /// The message this node committed to this round (for the Broadcast
    /// Congested Clique uniformity check).
    fn first_message(&self) -> Option<&Message> {
        if self.out_bcast.gen == self.round {
            return Some(&self.out_bcast.msg);
        }
        self.first_sent.map(|t| &self.out_row[t].msg)
    }

    fn try_send(&mut self, to: NodeId, msg: Message) -> Result<(), EngineError> {
        let t = to.index();
        if to == self.me || t >= self.n {
            return Err(EngineError::InvalidDestination {
                from: self.me,
                to,
                n: self.n,
            });
        }
        if self.broadcast_only {
            if let Some(first) = self.first_message() {
                if *first != msg {
                    return Err(EngineError::BroadcastViolation {
                        from: self.me,
                        round: self.round,
                    });
                }
            }
        }
        if self.out_row.is_empty() {
            // First unicast this sender ever issues: materialize its flat
            // slot row, reused (allocation-free) for the rest of the run.
            self.out_row.resize_with(self.n, Slot::empty);
        }
        if self.out_row[t].gen == self.round || self.out_bcast.gen == self.round {
            return Err(EngineError::DuplicateMessage {
                from: self.me,
                to,
                round: self.round,
            });
        }
        if msg.word_count() > self.max_words {
            return Err(EngineError::BandwidthExceeded {
                from: self.me,
                to,
                words: msg.word_count(),
                max_words: self.max_words,
            });
        }
        let slot = &mut self.out_row[t];
        slot.gen = self.round;
        slot.msg = msg;
        *self.out_uni_last = self.round;
        if self.first_sent.is_none() {
            self.first_sent = Some(t);
        }
        self.recv_counts[t] += 1;
        self.sent += 1;
        Ok(())
    }

    fn try_send_all(&mut self, msg: Message) -> Result<(), EngineError> {
        if self.n == 1 {
            return Ok(()); // No peers to address.
        }
        // The lowest-id peer, where a broadcast conflict or bandwidth
        // violation is attributed (mirroring a destination-order scan).
        let lowest_peer = NodeId::new(usize::from(self.me.index() == 0));
        if self.broadcast_only {
            if let Some(first) = self.first_message() {
                if *first != msg {
                    return Err(EngineError::BroadcastViolation {
                        from: self.me,
                        round: self.round,
                    });
                }
            }
        }
        if self.out_bcast.gen == self.round || self.sent > 0 {
            // A broadcast addresses every peer, so it conflicts with any
            // earlier send this round; report the lowest conflicting
            // destination.
            let to = if self.out_bcast.gen == self.round {
                lowest_peer
            } else {
                let t = (0..self.n)
                    .find(|&t| self.out_row[t].gen == self.round)
                    .expect("sent > 0 implies an occupied slot");
                NodeId::new(t)
            };
            return Err(EngineError::DuplicateMessage {
                from: self.me,
                to,
                round: self.round,
            });
        }
        if msg.word_count() > self.max_words {
            return Err(EngineError::BandwidthExceeded {
                from: self.me,
                to: lowest_peer,
                words: msg.word_count(),
                max_words: self.max_words,
            });
        }
        self.out_bcast.gen = self.round;
        self.out_bcast.msg = msg;
        Ok(())
    }
}

/// A distributed program run by each node of the clique.
///
/// Implementations are state machines: `on_round` is invoked once per round
/// with the node's inbox, and the program signals termination through
/// `is_done`. The engine stops when all nodes are done and no messages are in
/// flight.
///
/// Programs must be [`Send`] so shards of nodes can execute on worker
/// threads (see [`EngineConfig::threads`]); program state is still owned by
/// exactly one node, so this is vacuous for ordinary state machines.
pub trait NodeProgram: Send {
    /// Executes one round at this node.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Whether this node has terminated (it may still receive messages; a
    /// done node's `on_round` is still called while others run).
    fn is_done(&self) -> bool;
}

/// Statistics of a completed engine run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunStats {
    /// Communication rounds executed until global termination.
    ///
    /// **Convention:** this counts engine steps up to and including the last
    /// step in which *any* message was sent (`0` if the run never sends).
    /// Trailing steps that only consume delivered messages — in particular
    /// the final drain step every protocol needs to observe its last inbox —
    /// are local computation, which is free in the Congested Clique model.
    /// A protocol that sends in `k` (not necessarily consecutive) steps
    /// ending at step `k` therefore reports `rounds = k`, matching the cost
    /// formulas in [`crate::cost::model`] exactly (e.g. broadcast = 1,
    /// two-phase aggregate = 2).
    pub rounds: u64,
    /// Total point-to-point messages delivered (a broadcast counts `n − 1`).
    pub messages: u64,
    /// Maximum messages received by any single node in any round.
    pub max_in_degree: u64,
}

/// What one shard of nodes produced in a round.
struct ShardOutcome {
    /// Unicast messages queued by the shard's nodes.
    sent: u64,
    /// First model violation in ascending node order within the shard.
    err: Option<EngineError>,
}

/// One shard's exclusive write region of the next mailbox: the slices of
/// rows, unicast generations, and broadcast slots covering its node range
/// (source-major storage makes these disjoint across shards), plus the
/// shard's private per-destination receive tally.
struct ShardSlots<'a> {
    rows: &'a mut [Vec<Slot>],
    uni_last: &'a mut [u64],
    bcasts: &'a mut [Slot],
    counts: &'a mut [u32],
}

/// Executes one round for the contiguous node shard starting at `base`.
fn run_shard<P: NodeProgram>(
    base: usize,
    nodes: &mut [P],
    cur: &Mailbox,
    out: ShardSlots<'_>,
    round: u64,
    config: &EngineConfig,
) -> ShardOutcome {
    let n = cur.n;
    let mut sent = 0u64;
    let mut err: Option<EngineError> = None;
    let counts = out.counts;
    for (i, (((node, row), uni_last), bcast)) in nodes
        .iter_mut()
        .zip(out.rows)
        .zip(out.uni_last)
        .zip(out.bcasts)
        .enumerate()
    {
        let mut ctx = RoundCtx {
            me: NodeId::new(base + i),
            n,
            round,
            cur,
            out_row: row,
            out_uni_last: uni_last,
            out_bcast: bcast,
            recv_counts: counts,
            sent: 0,
            first_sent: None,
            err: None,
            max_words: config.max_words,
            broadcast_only: config.broadcast_only,
        };
        node.on_round(&mut ctx);
        sent += u64::from(ctx.sent);
        if err.is_none() {
            err = ctx.err;
        }
    }
    ShardOutcome { sent, err }
}

/// The synchronous engine: owns one program instance per node.
#[derive(Debug)]
pub struct Engine<P> {
    nodes: Vec<P>,
    config: EngineConfig,
}

impl<P: NodeProgram> Engine<P> {
    /// Creates an engine over the given per-node programs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<P>) -> Self {
        Engine::with_config(nodes, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn with_config(nodes: Vec<P>, config: EngineConfig) -> Self {
        assert!(!nodes.is_empty(), "clique must have at least one node");
        Engine { nodes, config }
    }

    /// Runs the program to global termination.
    ///
    /// All mailbox storage is allocated up front; steady-state rounds are
    /// allocation-free. With [`EngineConfig::threads`] `> 1` node execution
    /// is sharded across scoped worker threads with bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] if a node violates the model (duplicate
    /// destination, oversized message, self-send, broadcast non-uniformity)
    /// or the round limit is hit. When several nodes violate the model in
    /// the same round, the violation of the lowest node id is reported,
    /// independent of the thread count.
    pub fn run(&mut self) -> Result<RunStats, EngineError> {
        let n = self.nodes.len();
        let threads = self.config.threads.clamp(1, n);
        let shard = n.div_ceil(threads);
        let mut cur = Mailbox::new(n);
        let mut next = Mailbox::new(n);
        // Per-worker receive tallies, reused across rounds.
        let mut counts: Vec<Vec<u32>> = (0..threads).map(|_| vec![0u32; n]).collect();
        let mut round = 0u64;
        let mut rounds = 0u64;
        let mut messages = 0u64;
        let mut max_in_degree = 0u64;
        let mut pending = 0u64;

        loop {
            if pending == 0 && self.nodes.iter().all(NodeProgram::is_done) {
                return Ok(RunStats {
                    rounds,
                    messages,
                    max_in_degree,
                });
            }
            if round >= self.config.max_rounds {
                return Err(EngineError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            let outcomes: Vec<ShardOutcome> = if threads == 1 {
                vec![run_shard(
                    0,
                    &mut self.nodes,
                    &cur,
                    ShardSlots {
                        rows: &mut next.rows,
                        uni_last: &mut next.uni_last,
                        bcasts: &mut next.bcast,
                        counts: &mut counts[0],
                    },
                    round,
                    &self.config,
                )]
            } else {
                let cur_ref = &cur;
                let config = &self.config;
                std::thread::scope(|scope| {
                    let node_shards = self.nodes.chunks_mut(shard);
                    let row_shards = next.rows.chunks_mut(shard);
                    let uni_shards = next.uni_last.chunks_mut(shard);
                    let bcast_shards = next.bcast.chunks_mut(shard);
                    let handles: Vec<_> = node_shards
                        .zip(row_shards)
                        .zip(uni_shards)
                        .zip(bcast_shards)
                        .zip(counts.iter_mut())
                        .enumerate()
                        .map(|(w, ((((nodes, rows), unis), bcasts), cnt))| {
                            let slots = ShardSlots {
                                rows,
                                uni_last: unis,
                                bcasts,
                                counts: cnt,
                            };
                            scope.spawn(move || {
                                run_shard(w * shard, nodes, cur_ref, slots, round, config)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("engine worker panicked"))
                        .collect()
                })
            };

            // Shards cover ascending node ranges and each records its first
            // violation in node order, so the first error here is the
            // lowest-node-id one — deterministic under any thread count.
            for outcome in &outcomes {
                if let Some(err) = &outcome.err {
                    return Err(err.clone());
                }
            }

            let unicast: u64 = outcomes.iter().map(|o| o.sent).sum();
            let bcasters = next.bcast.iter().filter(|s| s.gen == round).count() as u64;
            if unicast > 0 || bcasters > 0 {
                for j in 0..n {
                    let mut indeg: u64 = counts.iter().map(|c| u64::from(c[j])).sum();
                    // Every broadcaster reaches j except j itself.
                    indeg += bcasters - u64::from(next.bcast[j].gen == round);
                    max_in_degree = max_in_degree.max(indeg);
                }
                rounds = round;
            }
            pending = unicast + bcasters * (n as u64 - 1);
            messages += pending;
            for c in &mut counts {
                c.fill(0);
            }
            std::mem::swap(&mut cur, &mut next);
        }
    }

    /// Immutable access to the per-node programs (for reading outputs after
    /// [`run`](Engine::run)).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine and returns the node programs.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A program where node 0 sends one word to node 1, then everyone stops.
    struct OneShot {
        me: usize,
        got: Option<u64>,
        sent: bool,
    }

    impl NodeProgram for OneShot {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if self.me == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::word(0, 42));
                self.sent = true;
            }
            if let Some(env) = ctx.inbox().next() {
                self.got = env.msg.first();
            }
        }

        fn is_done(&self) -> bool {
            self.me != 0 || self.sent
        }
    }

    #[test]
    fn delivers_in_one_round() {
        let nodes = (0..4)
            .map(|me| OneShot {
                me,
                got: None,
                sent: false,
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.messages, 1);
        // One communication round; the engine's final drain step (delivery
        // consumption) is free local computation.
        assert_eq!(stats.rounds, 1);
        assert_eq!(engine.nodes()[1].got, Some(42));
        assert_eq!(engine.nodes()[2].got, None);
    }

    /// Node 0 sends to node 1 in step 1; node 1 replies in step 2. Pins the
    /// round-accounting convention for a 2-phase protocol: two communication
    /// rounds, the trailing drain step uncounted.
    struct PingPong {
        me: usize,
        done: bool,
    }

    impl NodeProgram for PingPong {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            let received = ctx.inbox().next().is_some();
            match (self.me, ctx.round()) {
                (0, 1) => ctx.send(NodeId::new(1), Message::word(0, 1)),
                (1, _) if received => {
                    ctx.send(NodeId::new(0), Message::word(0, 2));
                    self.done = true;
                }
                (0, _) if received => self.done = true,
                _ => {}
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn two_phase_protocol_counts_two_rounds() {
        let nodes = (0..3).map(|me| PingPong { me, done: me == 2 }).collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.rounds, 2, "send + reply = 2 communication rounds");
        assert_eq!(stats.messages, 2);
    }

    /// A malicious program that double-sends from node 0.
    struct DoubleSender {
        fired: bool,
    }

    impl NodeProgram for DoubleSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.fired {
                ctx.send(NodeId::new(1), Message::word(0, 1));
                ctx.send(NodeId::new(1), Message::word(0, 2));
                self.fired = true;
            }
        }

        fn is_done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn duplicate_message_is_rejected() {
        // Node 0 is pending (will fire); peers are pre-done.
        let nodes = vec![
            DoubleSender { fired: false },
            DoubleSender { fired: true },
            DoubleSender { fired: true },
        ];
        let mut engine = Engine::new(nodes);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::DuplicateMessage { .. }));
    }

    /// Mixing a broadcast with any unicast in the same round is a duplicate.
    struct BroadcastThenSend {
        fired: bool,
        bcast_first: bool,
    }

    impl NodeProgram for BroadcastThenSend {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.fired {
                if self.bcast_first {
                    ctx.send_all(Message::word(0, 1));
                    ctx.send(NodeId::new(2), Message::word(0, 1));
                } else {
                    ctx.send(NodeId::new(2), Message::word(0, 1));
                    ctx.send_all(Message::word(0, 1));
                }
                self.fired = true;
            }
        }

        fn is_done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn broadcast_conflicts_with_unicast() {
        for bcast_first in [true, false] {
            let nodes = (0..4)
                .map(|i| BroadcastThenSend {
                    fired: i != 0,
                    bcast_first,
                })
                .collect();
            let err = Engine::new(nodes).run().unwrap_err();
            match err {
                EngineError::DuplicateMessage { from, to, .. } => {
                    assert_eq!(from.index(), 0);
                    // The conflict is attributed to the unicast destination.
                    assert_eq!(to.index(), 2, "bcast_first = {bcast_first}");
                }
                other => panic!("expected duplicate, got {other:?}"),
            }
        }
    }

    /// Two broadcasts in one round are a duplicate at the lowest peer.
    struct DoubleBroadcaster {
        fired: bool,
    }

    impl NodeProgram for DoubleBroadcaster {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.fired {
                ctx.send_all(Message::word(0, 1));
                ctx.send_all(Message::word(0, 2));
                self.fired = true;
            }
        }

        fn is_done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn double_broadcast_is_rejected() {
        let nodes = (0..3)
            .map(|i| DoubleBroadcaster { fired: i != 0 })
            .collect();
        let err = Engine::new(nodes).run().unwrap_err();
        assert_eq!(
            err,
            EngineError::DuplicateMessage {
                from: NodeId::new(0),
                to: NodeId::new(1),
                round: 1,
            }
        );
    }

    /// Program that sends an oversized message.
    struct FatSender {
        sent: bool,
    }

    impl NodeProgram for FatSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::new(0, vec![0; 64]));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn oversized_message_is_rejected() {
        let nodes = vec![FatSender { sent: false }, FatSender { sent: true }];
        let mut engine = Engine::new(nodes);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { .. }));
    }

    /// Program that never terminates.
    struct Spinner;

    impl NodeProgram for Spinner {
        fn on_round(&mut self, _ctx: &mut RoundCtx<'_>) {}

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let mut engine = Engine::with_config(
            vec![Spinner, Spinner],
            EngineConfig {
                max_rounds: 10,
                ..EngineConfig::default()
            },
        );
        let err = engine.run().unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    /// Program that sends distinct messages to distinct peers.
    struct Unicast {
        sent: bool,
    }

    impl NodeProgram for Unicast {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.me().index() == 0 && !self.sent {
                ctx.send(NodeId::new(1), Message::word(0, 1));
                ctx.send(NodeId::new(2), Message::word(0, 2));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn broadcast_mode_rejects_unicast() {
        let nodes = vec![
            Unicast { sent: false },
            Unicast { sent: true },
            Unicast { sent: true },
        ];
        let mut engine = Engine::with_config(
            nodes,
            EngineConfig {
                max_rounds: 100,
                broadcast_only: true,
                ..EngineConfig::default()
            },
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::BroadcastViolation { .. }));
    }

    #[test]
    fn broadcast_mode_accepts_uniform_sends() {
        use crate::programs::Broadcast as BcastProgram;
        let nodes = (0..6)
            .map(|i| BcastProgram::new(NodeId::new(i), NodeId::new(0), 11))
            .collect();
        let mut engine = Engine::with_config(
            nodes,
            EngineConfig {
                max_rounds: 100,
                broadcast_only: true,
                ..EngineConfig::default()
            },
        );
        engine.run().expect("uniform sends are legal broadcasts");
        assert!(engine.nodes().iter().all(|p| p.received() == Some(11)));
    }

    /// Self-sends are invalid destinations.
    struct SelfSender {
        sent: bool,
    }

    impl NodeProgram for SelfSender {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if !self.sent {
                let me = ctx.me();
                ctx.send(me, Message::signal(0));
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn self_send_is_rejected() {
        let mut engine = Engine::new(vec![SelfSender { sent: false }, SelfSender { sent: true }]);
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::InvalidDestination { .. }));
    }

    #[test]
    fn parallel_error_reporting_is_deterministic() {
        // Several nodes violate in the same round; the lowest node id must
        // win regardless of thread count.
        for threads in [1, 2, 4, 7] {
            let nodes = (0..8).map(|_| SelfSender { sent: false }).collect();
            let mut engine = Engine::with_config(
                nodes,
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
            );
            let err = engine.run().unwrap_err();
            assert_eq!(
                err,
                EngineError::InvalidDestination {
                    from: NodeId::new(0),
                    to: NodeId::new(0),
                    n: 8,
                },
                "threads = {threads}"
            );
        }
    }

    /// Every node sends its id to every *lower*-id node (distinct fan-in per
    /// receiver), recording arrival order — probes inbox ordering.
    struct FanIn {
        me: usize,
        seen: Vec<u64>,
        sent: bool,
    }

    impl NodeProgram for FanIn {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            for env in ctx.inbox() {
                assert_eq!(env.msg.first(), Some(env.from.index() as u64));
                self.seen.push(env.from.index() as u64);
            }
            if !self.sent {
                for to in 0..self.me {
                    ctx.send(NodeId::new(to), Message::word(0, self.me as u64));
                }
                self.sent = true;
            }
        }

        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn inbox_is_in_ascending_sender_order() {
        let n = 9;
        let nodes = (0..n)
            .map(|me| FanIn {
                me,
                seen: Vec::new(),
                sent: false,
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.max_in_degree, (n - 1) as u64);
        for (i, p) in engine.nodes().iter().enumerate() {
            let want: Vec<u64> = ((i + 1)..n).map(|x| x as u64).collect();
            assert_eq!(p.seen, want, "node {i}");
        }
    }

    #[test]
    fn threaded_run_is_bit_identical_to_serial() {
        use crate::programs::{AllGather, RoutedWord, TwoPhaseRouting};
        let n = 17;
        let make_gather = || -> Vec<AllGather> {
            (0..n)
                .map(|i| {
                    AllGather::new(
                        NodeId::new(i),
                        (0..(i % 4)).map(|j| (i * 7 + j) as u64).collect(),
                    )
                })
                .collect()
        };
        let make_routing = || -> Vec<TwoPhaseRouting> {
            (0..n)
                .map(|i| {
                    let words = (0..n)
                        .filter(|&j| j != i)
                        .map(|j| RoutedWord {
                            dest: NodeId::new(j),
                            payload: (i * 1000 + j) as u64,
                        })
                        .collect();
                    TwoPhaseRouting::new(NodeId::new(i), n, words, 99)
                })
                .collect()
        };

        let mut serial = Engine::new(make_gather());
        let serial_stats = serial.run().unwrap();
        for threads in [2, 3, 8] {
            let mut par = Engine::with_config(make_gather(), EngineConfig::threaded(threads));
            let par_stats = par.run().unwrap();
            assert_eq!(
                serial_stats, par_stats,
                "allgather stats, threads={threads}"
            );
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.collected(), b.collected());
            }
        }

        let mut serial = Engine::new(make_routing());
        let serial_stats = serial.run().unwrap();
        for threads in [2, 5] {
            let mut par = Engine::with_config(make_routing(), EngineConfig::threaded(threads));
            let par_stats = par.run().unwrap();
            assert_eq!(serial_stats, par_stats, "routing stats, threads={threads}");
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.delivered(), b.delivered());
            }
        }
    }

    #[test]
    fn single_node_clique_is_trivial() {
        struct Lonely {
            rounds: u64,
        }
        impl NodeProgram for Lonely {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                // send_all with no peers is a no-op.
                ctx.send_all(Message::word(0, 1));
                self.rounds = ctx.round();
            }
            fn is_done(&self) -> bool {
                self.rounds >= 3
            }
        }
        let mut engine = Engine::new(vec![Lonely { rounds: 0 }]);
        let stats = engine.run().unwrap();
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.rounds, 0, "no communication ever happened");
    }
}
