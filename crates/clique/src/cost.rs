//! Round-cost accounting for Congested Clique algorithms.
//!
//! Algorithms in this workspace perform their computation centrally but
//! charge every communication step to a [`RoundLedger`]. The formulas charged
//! live in [`model`] and correspond one-to-one to the communication lemmas the
//! paper invokes (see the table in `DESIGN.md` §1).
//!
//! Rounds are integers. The paper's bounds are asymptotic; the constants used
//! here are the smallest ones consistent with the cited constructions and are
//! documented on each formula. What matters for the reproduction is the
//! *growth shape* (who wins, where crossovers fall), which constants do not
//! change.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pure round-cost formulas for Congested Clique primitives.
///
/// All functions are deterministic and side-effect free so that they can be
/// unit-tested directly; [`RoundLedger`] exposes charging wrappers.
pub mod model {
    /// Ceiling division helper used by the formulas.
    #[inline]
    pub fn div_ceil(a: u64, b: u64) -> u64 {
        debug_assert!(b > 0);
        a.div_ceil(b)
    }

    /// `⌈log₂(x)⌉` for `x ≥ 1`; `0` for `x ≤ 1`.
    #[inline]
    pub fn log2_ceil(x: u64) -> u64 {
        if x <= 1 {
            0
        } else {
            64 - (x - 1).leading_zeros() as u64
        }
    }

    /// `⌈x^{1/3}⌉` computed exactly with integer arithmetic.
    pub fn cbrt_ceil(x: u64) -> u64 {
        if x == 0 {
            return 0;
        }
        let mut r = (x as f64).cbrt().round() as u64;
        // Fix up floating point error.
        while r > 0 && (r - 1).saturating_pow(3) >= x {
            r -= 1;
        }
        while r.saturating_pow(3) < x {
            r += 1;
        }
        r
    }

    /// One node broadcasts a single `O(log n)`-bit word: 1 round.
    ///
    /// In the clique a node can send (the same or different) words to all
    /// `n − 1` peers in a single round.
    #[inline]
    pub fn broadcast_one() -> u64 {
        1
    }

    /// Lenzen's deterministic routing \[Lenzen, PODC 2013\]: if every node is
    /// the source of at most `load` words and the destination of at most
    /// `load` words, all words are delivered in `O(⌈load/n⌉)` rounds.
    ///
    /// Constant: 2 rounds per unit of normalized load (distribute + deliver).
    #[inline]
    pub fn lenzen_route(load: u64, n: u64) -> u64 {
        2 * div_ceil(load.max(1), n.max(1))
    }

    /// One node learns `k` words scattered across the clique (gather):
    /// `⌈k/n⌉ + 1` rounds via Lenzen routing (Thm 32 proof of the paper).
    #[inline]
    pub fn gather_to_one(k: u64, n: u64) -> u64 {
        div_ceil(k.max(1), n.max(1)) + 1
    }

    /// All nodes learn the same `k` words ("learn-all"): `2⌈k/n⌉ + 2` rounds.
    ///
    /// Proof of Thm 32: one node gathers the `k` words (`⌈k/n⌉ + 1`), splits
    /// them into `n` parts of size `⌈k/n⌉`, sends one part per node
    /// (1 round folded into the gather constant), and every node broadcasts
    /// its part (`⌈k/n⌉` rounds).
    #[inline]
    pub fn learn_all(k: u64, n: u64) -> u64 {
        2 * div_ceil(k.max(1), n.max(1)) + 2
    }

    /// Dense min-plus (semiring) matrix product: `⌈n^{1/3}⌉` rounds
    /// \[Censor-Hillel et al., *Algebraic methods in the congested clique*\].
    #[inline]
    pub fn dense_minplus(n: u64) -> u64 {
        cbrt_ceil(n).max(1)
    }

    /// Sparse min-plus matrix product (Thm 36 of the paper, from \[3,5\]):
    /// `O((ρ_S ρ_T ρ_P)^{1/3} / n^{2/3} + 1)` rounds, with `ρ_P` the output
    /// density (bounded by `n` when unknown).
    #[inline]
    pub fn sparse_minplus(rho_s: u64, rho_t: u64, rho_out: u64, n: u64) -> u64 {
        let num = cbrt_ceil(rho_s.max(1) * rho_t.max(1) * rho_out.max(1));
        let den = (n.max(1) as f64).powf(2.0 / 3.0);
        ((num as f64 / den).ceil() as u64) + 1
    }

    /// Filtered min-plus product (Thm 58 of the paper, from \[3\]):
    /// `O((ρ_S ρ_T ρ)^{1/3}/n^{2/3} + log W)` rounds where `ρ` is the filter
    /// width and `W` bounds the number of distinct finite values.
    #[inline]
    pub fn filtered_minplus(rho_s: u64, rho_t: u64, rho: u64, w: u64, n: u64) -> u64 {
        sparse_minplus(rho_s, rho_t, rho, n) + log2_ceil(w.max(2))
    }

    /// `(S,d)`-source detection (Thm 11 of the paper, from \[3\]):
    /// `O((m^{1/3}|S|^{2/3}/n + 1) · d)` rounds on a graph with `m` edges.
    #[inline]
    pub fn source_detection(m: u64, s: u64, d: u64, n: u64) -> u64 {
        let per_hop = ((m.max(1) as f64).powf(1.0 / 3.0) * (s.max(1) as f64).powf(2.0 / 3.0)
            / n.max(1) as f64)
            .ceil() as u64
            + 1;
        per_hop * d.max(1)
    }

    /// Distance-through-sets (Thm 35 of the paper, from \[3\]):
    /// `O(ρ^{2/3}/n^{1/3} + 1)` rounds where `ρ` is the average set size.
    #[inline]
    pub fn through_sets(rho: u64, n: u64) -> u64 {
        ((rho.max(1) as f64).powf(2.0 / 3.0) / (n.max(1) as f64).powf(1.0 / 3.0)).ceil() as u64 + 1
    }

    /// Seed length of the read-once-DNF-fooling PRG (Lemma 56, from
    /// \[Gopalan et al., FOCS 2012\]): `O(log N · (log log N)³)` bits.
    #[inline]
    pub fn prg_seed_bits(big_n: u64) -> u64 {
        let ln = log2_ceil(big_n.max(4)).max(2);
        let lln = log2_ceil(ln).max(1);
        ln * lln.pow(3)
    }

    /// Deterministic (soft) hitting set selection by the method of
    /// conditional expectations over `⌊log n⌋`-bit seed chunks
    /// (Thm 57): `⌈seed_bits / ⌊log₂ n⌋⌉` rounds, i.e. `O((log log n)³)`.
    #[inline]
    pub fn conditional_expectation_rounds(big_n: u64, n: u64) -> u64 {
        let chunk = log2_ceil(n.max(4)).max(1);
        div_ceil(prg_seed_bits(big_n), chunk).max(1)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn div_ceil_basics() {
            assert_eq!(div_ceil(0, 4), 0);
            assert_eq!(div_ceil(1, 4), 1);
            assert_eq!(div_ceil(4, 4), 1);
            assert_eq!(div_ceil(5, 4), 2);
        }

        #[test]
        fn log2_ceil_basics() {
            assert_eq!(log2_ceil(0), 0);
            assert_eq!(log2_ceil(1), 0);
            assert_eq!(log2_ceil(2), 1);
            assert_eq!(log2_ceil(3), 2);
            assert_eq!(log2_ceil(1024), 10);
            assert_eq!(log2_ceil(1025), 11);
        }

        #[test]
        fn cbrt_ceil_exact_cubes() {
            for r in 0..50u64 {
                assert_eq!(cbrt_ceil(r * r * r), r);
                if r > 1 {
                    assert_eq!(cbrt_ceil(r * r * r - 1), r);
                    assert_eq!(cbrt_ceil(r * r * r + 1), r + 1);
                }
            }
        }

        #[test]
        fn lenzen_is_constant_for_balanced_load() {
            assert_eq!(lenzen_route(1000, 1000), 2);
            assert_eq!(lenzen_route(1, 1000), 2);
            assert_eq!(lenzen_route(2000, 1000), 4);
        }

        #[test]
        fn learn_all_scales_with_k_over_n() {
            let n = 1024;
            assert_eq!(learn_all(n, n), 4);
            assert_eq!(learn_all(10 * n, n), 22);
        }

        #[test]
        fn dense_minplus_is_cbrt() {
            assert_eq!(dense_minplus(1000), 10);
            assert_eq!(dense_minplus(1), 1);
        }

        #[test]
        fn sparse_minplus_constant_when_sqrt_dense() {
            // ρ_S = ρ_T = √n, output density n: (n^{1/2}·n^{1/2}·n)^{1/3} = n^{2/3};
            // divided by n^{2/3} this is 1, so the product is O(1) rounds.
            let n = 1 << 12;
            let s = 1 << 6;
            let r = sparse_minplus(s, s, n, n);
            assert!(r <= 3, "expected O(1), got {r}");
        }

        #[test]
        fn source_detection_linear_in_d() {
            let n = 1024;
            let m = n * 8;
            let s = 32;
            let r1 = source_detection(m, s, 10, n);
            let r2 = source_detection(m, s, 20, n);
            assert_eq!(r2, 2 * r1);
        }

        #[test]
        fn through_sets_constant_for_sqrt_sets() {
            let n = 1 << 12;
            let r = through_sets(1 << 6, n);
            assert!(r <= 3, "expected O(1), got {r}");
        }

        #[test]
        fn prg_seed_matches_asymptotics() {
            // log N = 12, log log N ≈ 4 → 12·64 = 768 bits.
            assert_eq!(prg_seed_bits(4096), 12 * 4u64.pow(3));
        }

        #[test]
        fn conditional_expectation_is_polyloglog() {
            // For N = n the round count is (log log n)³ up to rounding.
            let n = 1u64 << 12;
            let r = conditional_expectation_rounds(n, n);
            assert_eq!(r, 64); // (log log n)³ with log log n = 4
        }
    }
}

/// A single cost entry recorded by the ledger.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostEntry {
    /// Slash-separated phase path active when the charge was made.
    pub phase: String,
    /// Human-readable label of the primitive.
    pub label: String,
    /// Rounds charged.
    pub rounds: u64,
}

/// Hierarchical round/message ledger for one algorithm execution.
///
/// Create one ledger per algorithm run, [`enter`](RoundLedger::enter) phases
/// to attribute costs, and charge primitives through the `charge_*` methods
/// (which apply the formulas in [`model`]) or [`charge`](RoundLedger::charge)
/// directly.
///
/// # Example
///
/// ```
/// use cc_clique::cost::RoundLedger;
///
/// let mut ledger = RoundLedger::new(256);
/// ledger.charge("announce sets", 1);
/// {
///     let mut phase = ledger.enter("hopset");
///     phase.charge_source_detection("A1 exploration", 2048, 16, 8);
/// }
/// assert!(ledger.total_rounds() > 1);
/// assert!(ledger.report().contains("hopset"));
/// ```
#[derive(Clone, Debug)]
pub struct RoundLedger {
    n: usize,
    entries: Vec<CostEntry>,
    stack: Vec<String>,
    messages: u64,
}

impl RoundLedger {
    /// Creates a ledger for an `n`-node clique.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "clique must have at least one node");
        RoundLedger {
            n,
            entries: Vec::new(),
            stack: Vec::new(),
            messages: 0,
        }
    }

    /// Number of nodes in the clique this ledger models.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Enters a named phase; the returned guard pops the phase on drop and
    /// dereferences to the ledger so charges can be made through it.
    pub fn enter(&mut self, phase: &str) -> PhaseGuard<'_> {
        self.stack.push(phase.to_string());
        PhaseGuard { ledger: self }
    }

    fn phase_path(&self) -> String {
        self.stack.join("/")
    }

    /// Charges `rounds` rounds under the current phase.
    pub fn charge(&mut self, label: impl Into<String>, rounds: u64) {
        let entry = CostEntry {
            phase: self.phase_path(),
            label: label.into(),
            rounds,
        };
        self.entries.push(entry);
    }

    /// Records `count` point-to-point messages (informational; does not
    /// affect round totals).
    pub fn note_messages(&mut self, count: u64) {
        self.messages += count;
    }

    /// Total messages noted.
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Charges one broadcast round.
    pub fn charge_broadcast(&mut self, label: impl Into<String>) {
        self.charge(label, model::broadcast_one());
    }

    /// Charges a Lenzen routing step with per-node load `load`.
    pub fn charge_lenzen(&mut self, label: impl Into<String>, load: u64) {
        let n = self.n as u64;
        self.charge(label, model::lenzen_route(load, n));
    }

    /// Charges a learn-all of `k` words.
    pub fn charge_learn_all(&mut self, label: impl Into<String>, k: u64) {
        let n = self.n as u64;
        self.charge(label, model::learn_all(k, n));
    }

    /// Charges a gather of `k` words to one node.
    pub fn charge_gather(&mut self, label: impl Into<String>, k: u64) {
        let n = self.n as u64;
        self.charge(label, model::gather_to_one(k, n));
    }

    /// Charges a dense min-plus matrix product.
    pub fn charge_dense_minplus(&mut self, label: impl Into<String>) {
        let n = self.n as u64;
        self.charge(label, model::dense_minplus(n));
    }

    /// Charges a sparse min-plus matrix product (Thm 36).
    pub fn charge_sparse_minplus(
        &mut self,
        label: impl Into<String>,
        rho_s: u64,
        rho_t: u64,
        rho_out: u64,
    ) {
        let n = self.n as u64;
        self.charge(label, model::sparse_minplus(rho_s, rho_t, rho_out, n));
    }

    /// Charges a filtered min-plus product (Thm 58).
    pub fn charge_filtered_minplus(
        &mut self,
        label: impl Into<String>,
        rho_s: u64,
        rho_t: u64,
        rho: u64,
        w: u64,
    ) {
        let n = self.n as u64;
        self.charge(label, model::filtered_minplus(rho_s, rho_t, rho, w, n));
    }

    /// Charges an `(S,d)`-source detection run (Thm 11).
    pub fn charge_source_detection(&mut self, label: impl Into<String>, m: u64, s: u64, d: u64) {
        let n = self.n as u64;
        self.charge(label, model::source_detection(m, s, d, n));
    }

    /// Charges a distance-through-sets computation (Thm 35).
    pub fn charge_through_sets(&mut self, label: impl Into<String>, rho: u64) {
        let n = self.n as u64;
        self.charge(label, model::through_sets(rho, n));
    }

    /// Charges a deterministic conditional-expectation selection over a
    /// universe of size `big_n` (Thm 57 / Lemma 9).
    pub fn charge_conditional_expectation(&mut self, label: impl Into<String>, big_n: u64) {
        let n = self.n as u64;
        self.charge(label, model::conditional_expectation_rounds(big_n, n));
    }

    /// Total rounds charged so far.
    pub fn total_rounds(&self) -> u64 {
        self.entries.iter().map(|e| e.rounds).sum()
    }

    /// Rounds aggregated by top-level phase, in deterministic order.
    pub fn by_phase(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for e in &self.entries {
            let top = e.phase.split('/').next().unwrap_or("").to_string();
            *map.entry(top).or_insert(0) += e.rounds;
        }
        map
    }

    /// All raw entries in charge order.
    pub fn entries(&self) -> &[CostEntry] {
        &self.entries
    }

    /// Merges another ledger's entries into this one under the current phase.
    pub fn absorb(&mut self, other: &RoundLedger) {
        let prefix = self.phase_path();
        for e in &other.entries {
            let phase = if prefix.is_empty() {
                e.phase.clone()
            } else if e.phase.is_empty() {
                prefix.clone()
            } else {
                format!("{prefix}/{}", e.phase)
            };
            self.entries.push(CostEntry {
                phase,
                label: e.label.clone(),
                rounds: e.rounds,
            });
        }
        self.messages += other.messages;
    }

    /// Renders the ledger in the integer metrics-text style shared with the
    /// observability layer: one `{prefix}_rounds_total` / `_messages_total`
    /// line plus a `{prefix}_phase_rounds{phase="…"}` line per top-level
    /// phase (deterministic order — same [`RoundLedger::by_phase`]
    /// aggregation the report prints). Everything is `u64`; no floats.
    pub fn exposition(&self, prefix: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{prefix}_rounds_total {}\n", self.total_rounds()));
        out.push_str(&format!("{prefix}_messages_total {}\n", self.messages));
        for (phase, rounds) in self.by_phase() {
            let name = if phase.is_empty() { "root" } else { &phase };
            out.push_str(&format!(
                "{prefix}_phase_rounds{{phase=\"{name}\"}} {rounds}\n"
            ));
        }
        out
    }

    /// Renders a human-readable per-phase report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rounds total: {} (n = {})\n",
            self.total_rounds(),
            self.n
        ));
        for (phase, rounds) in self.by_phase() {
            let name = if phase.is_empty() { "<root>" } else { &phase };
            out.push_str(&format!("  {name:<32} {rounds:>8}\n"));
        }
        out
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

/// RAII guard returned by [`RoundLedger::enter`].
///
/// Dereferences to the ledger; pops the phase on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    ledger: &'a mut RoundLedger,
}

impl Deref for PhaseGuard<'_> {
    type Target = RoundLedger;

    fn deref(&self) -> &RoundLedger {
        self.ledger
    }
}

impl DerefMut for PhaseGuard<'_> {
    fn deref_mut(&mut self) -> &mut RoundLedger {
        self.ledger
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.ledger.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = RoundLedger::new(64);
        l.charge("a", 3);
        l.charge("b", 4);
        assert_eq!(l.total_rounds(), 7);
        assert_eq!(l.entries().len(), 2);
    }

    #[test]
    fn phases_nest_and_pop() {
        let mut l = RoundLedger::new(64);
        {
            let mut g = l.enter("outer");
            g.charge("x", 1);
            {
                let mut g2 = g.enter("inner");
                g2.charge("y", 2);
            }
            g.charge("z", 4);
        }
        l.charge("root", 8);
        let phases: Vec<_> = l.entries().iter().map(|e| e.phase.clone()).collect();
        assert_eq!(phases, vec!["outer", "outer/inner", "outer", ""]);
        let by = l.by_phase();
        assert_eq!(by["outer"], 7);
        assert_eq!(by[""], 8);
    }

    #[test]
    fn absorb_prefixes_phases() {
        let mut inner = RoundLedger::new(64);
        {
            let mut g = inner.enter("sub");
            g.charge("w", 5);
        }
        let mut outer = RoundLedger::new(64);
        let mut g = outer.enter("main");
        g.absorb(&inner);
        drop(g);
        assert_eq!(outer.total_rounds(), 5);
        assert_eq!(outer.entries()[0].phase, "main/sub");
    }

    #[test]
    fn convenience_charges_use_model() {
        let mut l = RoundLedger::new(1024);
        l.charge_learn_all("k", 1024);
        assert_eq!(l.total_rounds(), model::learn_all(1024, 1024));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = RoundLedger::new(0);
    }

    #[test]
    fn report_contains_phases() {
        let mut l = RoundLedger::new(16);
        let mut g = l.enter("emulator");
        g.charge("sample", 1);
        drop(g);
        assert!(l.report().contains("emulator"));
        assert!(l.to_string().contains("rounds total"));
    }

    #[test]
    fn exposition_renders_totals_and_phases() {
        let mut l = RoundLedger::new(16);
        let mut g = l.enter("emulator");
        g.charge("sample", 3);
        drop(g);
        l.charge("loose", 4);
        l.note_messages(9);
        let text = l.exposition("cc_solver");
        assert!(text.contains("cc_solver_rounds_total 7\n"));
        assert!(text.contains("cc_solver_messages_total 9\n"));
        assert!(text.contains("cc_solver_phase_rounds{phase=\"emulator\"} 3\n"));
        assert!(text.contains("cc_solver_phase_rounds{phase=\"root\"} 4\n"));
    }

    #[test]
    fn messages_are_tracked() {
        let mut l = RoundLedger::new(16);
        l.note_messages(100);
        l.note_messages(20);
        assert_eq!(l.total_messages(), 120);
    }
}
