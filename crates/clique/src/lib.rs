//! Congested Clique model substrate.
//!
//! The **Congested Clique** is a synchronous message-passing model over `n`
//! nodes in which every ordered pair of nodes may exchange one `O(log n)`-bit
//! message per round. Inputs (graph edges) are local to their endpoints and
//! outputs are local to the node they concern.
//!
//! This crate provides the two layers every algorithm crate in this workspace
//! builds on:
//!
//! * [`engine`] — a genuine synchronous message-passing simulator. Nodes are
//!   [`engine::NodeProgram`] state machines and the engine enforces the model's
//!   bandwidth constraints (one message per ordered pair per round, bounded
//!   message width). Messages flow through a flat, preallocated
//!   double-buffered mailbox (zero steady-state allocation, `O(1)` model
//!   checks, a store-once broadcast fast path) and node execution can be
//!   sharded across threads with bit-identical results
//!   ([`engine::EngineConfig::threads`]). The [`programs`] module contains
//!   real distributed programs (broadcast, all-to-all, hop-limited BFS,
//!   two-phase routing) used to validate the model and to ground the cost
//!   constants.
//! * [`cost`] — a round/message ledger ([`cost::RoundLedger`]) together with
//!   the documented round-cost formulas ([`cost::model`]) of the communication
//!   primitives used by Dory–Parter (PODC 2020) and the prior work it builds
//!   on (Lenzen routing, sparse/filtered matrix multiplication, source
//!   detection, distance-through-sets, hitting-set derandomization).
//!
//! Higher-level algorithms perform their computation centrally (the simulator
//! runs on one machine) but thread a [`cost::RoundLedger`] through every
//! communication step, charging the documented formula for each primitive.
//! Experiment binaries report those round counts; see `DESIGN.md` §1 for the
//! methodology discussion.
//!
//! # Example
//!
//! ```
//! use cc_clique::cost::RoundLedger;
//!
//! let mut ledger = RoundLedger::new(1024);
//! {
//!     let mut phase = ledger.enter("emulator");
//!     phase.charge_learn_all("collect emulator", 10 * 1024);
//! }
//! assert!(ledger.total_rounds() >= 2);
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod error;
pub mod message;
pub mod node;
pub mod programs;

pub use cost::{model, RoundLedger};
pub use engine::{Delivery, Engine, EngineConfig, InboxIter, NodeProgram, RoundCtx, RunStats};
pub use error::EngineError;
pub use message::Message;
pub use node::NodeId;
