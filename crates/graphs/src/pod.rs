//! POD reinterpretation of frozen tables: shared byte buffers viewed as
//! typed rows without copying.
//!
//! The serving side of this workspace (snapshot format v2, the `ccd`
//! daemon) wants the hot tables — distance entries, provenance tags, route
//! arena sections — addressable **in place** from an `mmap`'d snapshot,
//! with zero deserialization. This module is the one place that
//! reinterpretation is allowed to happen:
//!
//! * [`ByteOwner`] — an `unsafe` trait for stable byte allocations (an
//!   `mmap`'d file, an aligned heap buffer). The contract is pointer
//!   stability: `bytes()` must return the same allocation every call.
//! * [`SharedSlice`] — a typed window `&[T]` into a [`ByteOwner`],
//!   validated (bounds + alignment) once at construction.
//! * [`PodData`] — either an owned `Vec<T>` or a [`SharedSlice`]; the
//!   storage type frozen tables hold so the same query code serves both
//!   heap-built and mapped oracles.
//! * [`AlignedBytes`] — an 8-byte-aligned owned buffer, the fallback owner
//!   when a snapshot arrives through a stream instead of a file.
//!
//! Byte order: shared views reinterpret file bytes in **native** order.
//! Snapshot files are little-endian, so loaders must only construct shared
//! views on little-endian targets and fall back to decode-copy elsewhere
//! (see `cc_core`'s snapshot module).

// The unsafe below is confined to three places — `AlignedBytes::bytes`,
// `SharedSlice::as_slice`, and the `ByteOwner` trait contract — and every
// invariant (bounds, alignment, pointer stability) is checked or required
// at construction.
#![allow(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// A stable byte allocation that typed views can borrow from.
///
/// # Safety
///
/// Implementors guarantee that `bytes()` returns a slice with the **same
/// pointer and length on every call** for the whole lifetime of the value
/// (no reallocation, no interior mutability, no remapping). [`SharedSlice`]
/// caches validation results against that pointer.
pub unsafe trait ByteOwner: Send + Sync + fmt::Debug + 'static {
    /// The owned bytes.
    fn bytes(&self) -> &[u8];
}

/// An owned byte buffer backed by a `Vec<u64>`, so its base pointer is
/// 8-byte aligned. Copying a snapshot stream into one of these makes every
/// 64-byte-aligned section offset valid for `u8`/`u32`/`u64` views.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-byte-aligned allocation.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let words = bytes.len().div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        // SAFETY: the Vec<u64> allocation is at least `bytes.len()` bytes
        // and u64 has no padding or validity requirements on raw bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                buf.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        AlignedBytes {
            words: buf,
            len: bytes.len(),
        }
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedBytes({} bytes)", self.len)
    }
}

// SAFETY: the Vec is never touched after construction, so the pointer and
// length are stable for the owner's lifetime.
unsafe impl ByteOwner for AlignedBytes {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the allocation holds at least `len` initialized bytes
        // (zero-filled words, then overwritten by the copy).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for super::DirEntry {}
}

/// Plain-old-data element types a byte buffer may be reinterpreted as:
/// fixed size, no padding, every bit pattern valid.
pub trait Pod: Copy + Send + Sync + PartialEq + fmt::Debug + sealed::Sealed + 'static {}
impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for DirEntry {}

/// Section alignment of snapshot format v2: every section starts at a
/// multiple of this, relative to the snapshot's own first byte.
pub const SECTION_ALIGN: usize = 64;

/// Compile-time layout contract for every row type a v2 snapshot section is
/// reinterpreted as.
///
/// Each implementation states the intended wire layout (`WIRE_SIZE`, the
/// sum of its field sizes) and the `LAYOUT_CHECKED` constant proves, at
/// compile time, that the in-memory layout matches it:
///
/// * `size_of::<Self>() == WIRE_SIZE` — no size drift;
/// * `FIELD_SIZE_SUM == WIRE_SIZE` — no interior or trailing padding, so
///   every byte of a row is a declared field and reinterpretation never
///   reads uninitialized padding;
/// * `SECTION_ALIGN % align_of::<Self>() == 0` — any 64-aligned section
///   offset (over an at-least-8-aligned owner base) satisfies the type's
///   alignment.
///
/// A layout drift — a reordered field, a changed `repr`, a platform where
/// the compiler would insert padding — breaks the build here instead of
/// corrupting a snapshot. The trait is sealed: new section row types must
/// be added in this module, which the `cc-analyze` POD manifest
/// cross-checks.
pub trait Section: Pod {
    /// Size in bytes of one row on the wire (and, checked, in memory).
    const WIRE_SIZE: usize;
    /// Sum of the declared field sizes; equal to [`Section::WIRE_SIZE`]
    /// exactly when the layout is padding-free.
    const FIELD_SIZE_SUM: usize;
    /// Forces the layout assertions; evaluated via the `const _` items
    /// below, so an impl with a drifted layout fails to compile.
    const LAYOUT_CHECKED: () = {
        assert!(
            std::mem::size_of::<Self>() == Self::WIRE_SIZE,
            "section row size drifted from its wire layout"
        );
        assert!(
            Self::FIELD_SIZE_SUM == Self::WIRE_SIZE,
            "section row has padding (field sizes do not sum to its size)"
        );
        assert!(
            SECTION_ALIGN.is_multiple_of(std::mem::align_of::<Self>()),
            "section row alignment does not divide the section alignment"
        );
    };
}

impl Section for u8 {
    const WIRE_SIZE: usize = 1;
    const FIELD_SIZE_SUM: usize = 1;
}
impl Section for u32 {
    const WIRE_SIZE: usize = 4;
    const FIELD_SIZE_SUM: usize = 4;
}
impl Section for u64 {
    const WIRE_SIZE: usize = 8;
    const FIELD_SIZE_SUM: usize = 8;
}
impl Section for DirEntry {
    const WIRE_SIZE: usize = 24;
    // id u16 + reserved u16 + reserved2 u32 + byte_off u64 + byte_len u64.
    const FIELD_SIZE_SUM: usize = 2 + 2 + 4 + 8 + 8;
}

const _: () = <u8 as Section>::LAYOUT_CHECKED;
const _: () = <u32 as Section>::LAYOUT_CHECKED;
const _: () = <u64 as Section>::LAYOUT_CHECKED;
const _: () = <DirEntry as Section>::LAYOUT_CHECKED;

/// One v2 section-directory entry, as laid out on the wire (24 bytes,
/// little-endian fields): the row type a mapped snapshot's directory is
/// reinterpreted as on little-endian targets.
///
/// Registered in the `cc-analyze` POD manifest; layout pinned by its
/// [`Section`] impl.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// Section id (format-specific namespace).
    pub id: u16,
    /// Reserved, written as zero.
    pub reserved: u16,
    /// Reserved, written as zero.
    pub reserved2: u32,
    /// Section offset in bytes, relative to the snapshot's first byte.
    pub byte_off: u64,
    /// Section length in bytes.
    pub byte_len: u64,
}

/// A typed window `&[T]` into a [`ByteOwner`], keeping the owner alive.
///
/// Bounds and alignment are validated once in [`SharedSlice::new`]; the
/// [`ByteOwner`] contract (pointer stability) keeps that validation good
/// for every later access.
pub struct SharedSlice<T: Pod> {
    owner: Arc<dyn ByteOwner>,
    byte_off: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> SharedSlice<T> {
    /// A view of `len` elements of `T` starting `byte_off` bytes into
    /// `owner`'s allocation. Returns `None` when the window is out of
    /// bounds or the absolute address is not aligned for `T` — callers
    /// (snapshot loaders) fall back to a decode-copy in that case.
    pub fn new(owner: Arc<dyn ByteOwner>, byte_off: usize, len: usize) -> Option<Self> {
        let bytes = owner.bytes();
        let size = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_off.checked_add(size)?;
        if end > bytes.len() {
            return None;
        }
        if !(bytes.as_ptr() as usize + byte_off).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(SharedSlice {
            owner,
            byte_off,
            len,
            _marker: PhantomData,
        })
    }

    /// The typed view. Native byte order — see the module docs.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: bounds and alignment were validated in `new` against the
        // owner's allocation, which the ByteOwner contract keeps stable;
        // T is Pod, so any bit pattern is a valid value.
        unsafe {
            let base = self.owner.bytes().as_ptr().add(self.byte_off);
            std::slice::from_raw_parts(base.cast::<T>(), self.len)
        }
    }
}

impl<T: Pod> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice {
            owner: Arc::clone(&self.owner),
            byte_off: self.byte_off,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Pod> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedSlice<{}>(off {}, len {})",
            std::any::type_name::<T>(),
            self.byte_off,
            self.len
        )
    }
}

/// The storage behind a frozen POD table: an owned `Vec<T>` (built in
/// memory) or a [`SharedSlice`] into a mapped snapshot (served in place).
///
/// Dereferences to `[T]` either way, so query code never distinguishes the
/// two. Equality and ordering compare element content, like `Vec<T>`.
/// Mutating accessors ([`PodData::push`], [`PodData::extend_from_slice`])
/// convert a shared table to an owned copy first — freezing is the normal
/// direction, so that copy only happens when a loaded table is extended,
/// which no serving path does.
#[derive(Clone, Debug)]
pub struct PodData<T: Pod>(Inner<T>);

#[derive(Clone, Debug)]
enum Inner<T: Pod> {
    Owned(Vec<T>),
    Shared(SharedSlice<T>),
}

impl<T: Pod> PodData<T> {
    /// The element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Inner::Owned(v) => v,
            Inner::Shared(s) => s.as_slice(),
        }
    }

    /// `true` when the table is a view into a shared byte buffer (zero-copy
    /// snapshot) rather than an owned allocation.
    pub fn is_shared(&self) -> bool {
        matches!(self.0, Inner::Shared(_))
    }

    /// Owned mutable access, converting a shared view into an owned copy on
    /// first use.
    fn make_owned(&mut self) -> &mut Vec<T> {
        if let Inner::Shared(s) = &self.0 {
            self.0 = Inner::Owned(s.as_slice().to_vec());
        }
        match &mut self.0 {
            Inner::Owned(v) => v,
            Inner::Shared(_) => unreachable!("converted above"),
        }
    }

    /// Appends one element (copy-on-write for shared tables).
    pub fn push(&mut self, value: T) {
        self.make_owned().push(value);
    }

    /// Appends a slice (copy-on-write for shared tables).
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.make_owned().extend_from_slice(values);
    }
}

impl<T: Pod> Deref for PodData<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for PodData<T> {
    fn default() -> Self {
        PodData(Inner::Owned(Vec::new()))
    }
}

impl<T: Pod> From<Vec<T>> for PodData<T> {
    fn from(v: Vec<T>) -> Self {
        PodData(Inner::Owned(v))
    }
}

impl<T: Pod> From<SharedSlice<T>> for PodData<T> {
    fn from(s: SharedSlice<T>) -> Self {
        PodData(Inner::Shared(s))
    }
}

impl<T: Pod> PartialEq for PodData<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for PodData<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_layouts_match_their_wire_contracts() {
        // The real checks are the `const _` items above (compile-time);
        // this pins the same facts at run time for the test report.
        assert_eq!(std::mem::size_of::<DirEntry>(), DirEntry::WIRE_SIZE);
        assert_eq!(DirEntry::FIELD_SIZE_SUM, DirEntry::WIRE_SIZE);
        assert_eq!(SECTION_ALIGN % std::mem::align_of::<DirEntry>(), 0);
        assert_eq!(std::mem::size_of::<u64>(), <u64 as Section>::WIRE_SIZE);
    }

    #[test]
    fn dir_entries_reinterpret_from_le_bytes() {
        let mut bytes = Vec::new();
        for (id, off, len) in [(1u16, 64u64, 3u64), (4, 128, 12)] {
            bytes.extend_from_slice(&id.to_le_bytes());
            bytes.extend_from_slice(&0u16.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&off.to_le_bytes());
            bytes.extend_from_slice(&len.to_le_bytes());
        }
        let owner: Arc<dyn ByteOwner> = Arc::new(AlignedBytes::copy_from(&bytes));
        let s = SharedSlice::<DirEntry>::new(owner, 0, 2).expect("aligned");
        if cfg!(target_endian = "little") {
            assert_eq!(
                s.as_slice()[1],
                DirEntry {
                    id: 4,
                    reserved: 0,
                    reserved2: 0,
                    byte_off: 128,
                    byte_len: 12,
                }
            );
        }
    }

    #[test]
    fn aligned_bytes_round_trip() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..len as u8).collect();
            let a = AlignedBytes::copy_from(&src);
            assert_eq!(a.bytes(), &src[..]);
            assert_eq!(a.bytes().as_ptr() as usize % 8, 0, "8-byte aligned");
        }
    }

    #[test]
    fn shared_slice_views_typed_rows() {
        let mut bytes = Vec::new();
        for v in [7u32, 11, 13, 17] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let owner: Arc<dyn ByteOwner> = Arc::new(AlignedBytes::copy_from(&bytes));
        let s = SharedSlice::<u32>::new(Arc::clone(&owner), 0, 4).expect("aligned");
        // Native == little-endian on every CI target; the snapshot loaders
        // gate shared views on target_endian = "little".
        if cfg!(target_endian = "little") {
            assert_eq!(s.as_slice(), &[7, 11, 13, 17]);
        }
        let tail = SharedSlice::<u32>::new(Arc::clone(&owner), 8, 2).expect("mid view");
        assert_eq!(tail.as_slice().len(), 2);
        assert!(
            SharedSlice::<u32>::new(Arc::clone(&owner), 8, 3).is_none(),
            "out of bounds"
        );
        assert!(
            SharedSlice::<u32>::new(Arc::clone(&owner), 2, 1).is_none(),
            "misaligned"
        );
        assert!(SharedSlice::<u8>::new(owner, 2, 1).is_some(), "u8 any off");
    }

    #[test]
    fn pod_data_owned_and_shared_compare_equal() {
        let mut bytes = Vec::new();
        for v in [3u32, 5, 9] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let owner: Arc<dyn ByteOwner> = Arc::new(AlignedBytes::copy_from(&bytes));
        let shared: PodData<u32> = SharedSlice::new(owner, 0, 3).expect("aligned").into();
        if cfg!(target_endian = "little") {
            let owned: PodData<u32> = vec![3, 5, 9].into();
            assert_eq!(owned, shared);
            assert!(!owned.is_shared());
            assert!(shared.is_shared());
            assert_eq!(&shared[1..], &[5, 9]);
        }
    }

    #[test]
    fn mutation_converts_shared_to_owned() {
        let bytes = 42u32.to_le_bytes();
        let owner: Arc<dyn ByteOwner> = Arc::new(AlignedBytes::copy_from(&bytes));
        let mut data: PodData<u32> = SharedSlice::new(owner, 0, 1).expect("aligned").into();
        data.push(7);
        assert!(!data.is_shared(), "copy-on-write");
        if cfg!(target_endian = "little") {
            assert_eq!(&data[..], &[42, 7]);
        }
        let mut empty = PodData::<u8>::default();
        empty.extend_from_slice(&[1, 2]);
        assert_eq!(&empty[..], &[1, 2]);
    }
}
