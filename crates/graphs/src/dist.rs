//! The distance scalar used throughout the workspace.

/// Distance value. Unweighted distances are at most `n`; emulator and hopset
/// weights are sums of at most `n` unit lengths, so `u32` suffices for every
/// graph this workspace handles.
pub type Dist = u32;

/// "Infinite" distance: large enough to dominate every real distance, small
/// enough that `INF + INF` does not overflow `u32`.
pub const INF: Dist = u32::MAX / 4;

/// Saturating distance addition: any sum involving [`INF`] stays [`INF`], and
/// finite sums are clamped to [`INF`].
///
/// # Example
///
/// ```
/// use cc_graphs::{dadd, INF};
///
/// assert_eq!(dadd(2, 3), 5);
/// assert_eq!(dadd(INF, 3), INF);
/// assert_eq!(dadd(INF, INF), INF);
/// ```
#[inline]
pub fn dadd(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b).min(INF)
}

/// `true` when `d` represents a real (finite) distance.
#[inline]
pub fn is_finite(d: Dist) -> bool {
    d < INF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_absorbs() {
        assert_eq!(dadd(INF, 0), INF);
        assert_eq!(dadd(0, INF), INF);
        assert_eq!(dadd(INF - 1, INF - 1), INF);
    }

    #[test]
    fn finite_sums_are_exact() {
        assert_eq!(dadd(100, 200), 300);
        assert_eq!(dadd(0, 0), 0);
    }

    #[test]
    fn no_overflow_at_extremes() {
        // INF + INF must not wrap around u32.
        assert!(INF.checked_add(INF).is_some());
    }

    #[test]
    fn finiteness_predicate() {
        assert!(is_finite(0));
        assert!(is_finite(INF - 1));
        assert!(!is_finite(INF));
    }
}
