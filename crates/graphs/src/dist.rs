//! The distance scalar used throughout the workspace, plus the physical
//! storage layouts distance tables are frozen into for serving.

use crate::pod::PodData;

/// Distance value. Unweighted distances are at most `n`; emulator and hopset
/// weights are sums of at most `n` unit lengths, so `u32` suffices for every
/// graph this workspace handles.
pub type Dist = u32;

/// "Infinite" distance: large enough to dominate every real distance, small
/// enough that `INF + INF` does not overflow `u32`.
pub const INF: Dist = u32::MAX / 4;

/// Saturating distance addition: any sum involving [`INF`] stays [`INF`], and
/// finite sums are clamped to [`INF`].
///
/// # Example
///
/// ```
/// use cc_graphs::{dadd, INF};
///
/// assert_eq!(dadd(2, 3), 5);
/// assert_eq!(dadd(INF, 3), INF);
/// assert_eq!(dadd(INF, INF), INF);
/// ```
#[inline]
pub fn dadd(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b).min(INF)
}

/// `true` when `d` represents a real (finite) distance.
#[inline]
pub fn is_finite(d: Dist) -> bool {
    d < INF
}

/// The physical layout of a [`DistStorage`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageKind {
    /// Row-major square `n × n` table.
    Full,
    /// Packed upper triangle (diagonal included), `n(n+1)/2` entries —
    /// half the memory of [`StorageKind::Full`] for symmetric tables.
    SymmetricPacked,
    /// Only the rows of selected source vertices, `|S| × n` entries —
    /// the shape MSSP results come in.
    RowSparse,
}

impl StorageKind {
    /// Short lowercase label (used by benches and reports).
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Full => "full",
            StorageKind::SymmetricPacked => "symmetric",
            StorageKind::RowSparse => "rowsparse",
        }
    }
}

/// An immutable distance table in one of three physical layouts.
///
/// This is the read-side counterpart of the mutable estimate matrices the
/// pipelines build: once estimates are final they are frozen into a
/// `DistStorage`, which answers `get(u, v)` lock-free from shared
/// references. All layouts treat a missing entry as [`INF`] and are
/// symmetric-by-convention: a row-sparse table answers `(u, v)` from the
/// row of `v` when only `v` is a source.
///
/// Entry indexing (the order of [`DistStorage::data`]) is part of the
/// public contract — snapshot files and per-entry provenance tags index
/// into it:
///
/// * `Full`: `data[u * n + v]`.
/// * `SymmetricPacked`: for `u ≤ v`, `data[packed_index(n, u, v)]`
///   (row-major upper triangle, diagonal included — see
///   [`DistStorage::packed_index`]).
/// * `RowSparse`: `data[i * n + v]` where `i` is the position of `u` in
///   `sources`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistStorage {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Repr {
    /// Row-major square table: `n * n` entries.
    Full { n: usize, data: PodData<Dist> },
    /// Packed upper triangle of a symmetric table: `n(n+1)/2` entries.
    SymmetricPacked { n: usize, data: PodData<Dist> },
    /// Rows of selected sources only: `sources.len() * n` entries,
    /// `data[i * n + v] = δ(sources[i], v)`.
    RowSparse {
        n: usize,
        /// Source vertices, in input order (duplicates allowed; the first
        /// occurrence wins on lookup).
        sources: PodData<u32>,
        /// First-occurrence row of each vertex (`NO_ROW` for non-sources):
        /// the O(1) index point lookups go through. Always owned — derived
        /// at construction, never part of a snapshot.
        row_of: Vec<u32>,
        data: PodData<Dist>,
    },
}

/// `row_of` sentinel for vertices that are not sources.
const NO_ROW: u32 = u32::MAX;

impl DistStorage {
    /// Wraps a row-major square table (an owned `Vec` or a shared snapshot
    /// section — anything convertible to [`PodData`]).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn full(n: usize, data: impl Into<PodData<Dist>>) -> Self {
        let data = data.into();
        assert_eq!(data.len(), n * n, "full storage needs n^2 entries");
        DistStorage {
            repr: Repr::Full { n, data },
        }
    }

    /// Wraps a packed upper triangle.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n(n+1)/2`.
    pub fn symmetric_packed(n: usize, data: impl Into<PodData<Dist>>) -> Self {
        let data = data.into();
        assert_eq!(
            data.len(),
            n * (n + 1) / 2,
            "packed storage needs n(n+1)/2 entries"
        );
        DistStorage {
            repr: Repr::SymmetricPacked { n, data },
        }
    }

    /// Wraps source rows. Duplicate sources are allowed; the first
    /// occurrence wins on lookup.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != sources.len() * n` or a source is `≥ n`.
    pub fn row_sparse(
        n: usize,
        sources: impl Into<PodData<u32>>,
        data: impl Into<PodData<Dist>>,
    ) -> Self {
        let (sources, data) = (sources.into(), data.into());
        assert_eq!(
            data.len(),
            sources.len() * n,
            "row-sparse storage needs |S|·n entries"
        );
        assert!(
            sources.iter().all(|&s| (s as usize) < n),
            "source out of range"
        );
        let mut row_of = vec![NO_ROW; n];
        for (i, &s) in sources.iter().enumerate() {
            if row_of[s as usize] == NO_ROW {
                row_of[s as usize] = i as u32;
            }
        }
        DistStorage {
            repr: Repr::RowSparse {
                n,
                sources,
                row_of,
                data,
            },
        }
    }

    /// `true` when the entry table is a zero-copy view into a shared byte
    /// buffer (a mapped snapshot) rather than an owned allocation.
    pub fn is_shared(&self) -> bool {
        match &self.repr {
            Repr::Full { data, .. }
            | Repr::SymmetricPacked { data, .. }
            | Repr::RowSparse { data, .. } => data.is_shared(),
        }
    }

    /// The layout tag.
    pub fn kind(&self) -> StorageKind {
        match &self.repr {
            Repr::Full { .. } => StorageKind::Full,
            Repr::SymmetricPacked { .. } => StorageKind::SymmetricPacked,
            Repr::RowSparse { .. } => StorageKind::RowSparse,
        }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        match &self.repr {
            Repr::Full { n, .. } | Repr::SymmetricPacked { n, .. } | Repr::RowSparse { n, .. } => {
                *n
            }
        }
    }

    /// Number of stored entries (the length of the entry index space).
    pub fn entries(&self) -> usize {
        self.data().len()
    }

    /// Payload bytes held by the table: the distance entries, plus the
    /// source list and its O(1) lookup index for row-sparse layouts.
    pub fn bytes(&self) -> usize {
        let extra = match &self.repr {
            Repr::RowSparse {
                sources, row_of, ..
            } => {
                std::mem::size_of_val(sources.as_slice()) + std::mem::size_of_val(row_of.as_slice())
            }
            _ => 0,
        };
        std::mem::size_of_val(self.data()) + extra
    }

    /// The raw entry array, in the documented entry order.
    pub fn data(&self) -> &[Dist] {
        match &self.repr {
            Repr::Full { data, .. }
            | Repr::SymmetricPacked { data, .. }
            | Repr::RowSparse { data, .. } => data,
        }
    }

    /// The source list of a row-sparse table (`None` for square layouts).
    pub fn sources(&self) -> Option<&[u32]> {
        match &self.repr {
            Repr::RowSparse { sources, .. } => Some(sources),
            _ => None,
        }
    }

    /// The entry index of `(u, v)` in the packed-upper-triangle layout
    /// (orientation is normalized, so `u > v` is fine). This is the single
    /// definition freeze sites and lookups share.
    ///
    /// # Panics
    ///
    /// May panic (or return a wrong index) if `u ≥ n` or `v ≥ n`;
    /// callers bounds-check first.
    #[inline]
    pub fn packed_index(n: usize, u: usize, v: usize) -> usize {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        a * (2 * n - a + 1) / 2 + (b - a)
    }

    /// Looks up `(u, v)`, returning the value together with the entry index
    /// it came from (the index provenance tags are keyed by). Returns `None`
    /// for out-of-range vertices and for row-sparse lookups where neither
    /// endpoint is a source. A stored [`INF`] is returned as-is.
    ///
    /// Row-sparse ties (both endpoints are sources) resolve to the smaller
    /// value; on equal values the row of `u` wins.
    #[inline]
    pub fn lookup(&self, u: usize, v: usize) -> Option<(Dist, usize)> {
        let n = self.n();
        if u >= n || v >= n {
            return None;
        }
        match &self.repr {
            Repr::Full { data, .. } => {
                let idx = u * n + v;
                Some((data[idx], idx))
            }
            Repr::SymmetricPacked { data, .. } => {
                let idx = Self::packed_index(n, u, v);
                Some((data[idx], idx))
            }
            Repr::RowSparse { row_of, data, .. } => {
                let entry = |x: usize, y: usize| match row_of[x] {
                    NO_ROW => None,
                    i => {
                        let idx = i as usize * n + y;
                        Some((data[idx], idx))
                    }
                };
                let fwd = entry(u, v);
                let rev = entry(v, u);
                match (fwd, rev) {
                    (Some(f), Some(r)) => Some(if r.0 < f.0 { r } else { f }),
                    (f, r) => f.or(r),
                }
            }
        }
    }

    /// The stored estimate for `(u, v)`, [`INF`] when nothing is stored.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> Dist {
        self.lookup(u, v).map_or(INF, |(d, _)| d)
    }

    /// Borrows the full row of `u` when the layout physically holds one:
    /// `Full` always, `RowSparse` when `u` is a source. `SymmetricPacked`
    /// rows are not contiguous — use [`DistStorage::copy_row`] there.
    pub fn row(&self, u: usize) -> Option<&[Dist]> {
        let n = self.n();
        if u >= n {
            return None;
        }
        match &self.repr {
            Repr::Full { data, .. } => Some(&data[u * n..(u + 1) * n]),
            Repr::SymmetricPacked { .. } => None,
            Repr::RowSparse { row_of, data, .. } => match row_of[u] {
                NO_ROW => None,
                i => Some(&data[i as usize * n..(i as usize + 1) * n]),
            },
        }
    }

    /// Materializes the row of `u` into `out` (length `n`), for every
    /// layout. Entries with no stored estimate become [`INF`]; row-sparse
    /// rows of a non-source `u` are filled from the source rows' columns.
    ///
    /// # Panics
    ///
    /// Panics if `u ≥ n` or `out.len() != n`.
    pub fn copy_row(&self, u: usize, out: &mut [Dist]) {
        let n = self.n();
        assert!(u < n, "vertex {u} out of range for n = {n}");
        assert_eq!(out.len(), n, "output row length mismatch");
        match &self.repr {
            Repr::Full { data, .. } => out.copy_from_slice(&data[u * n..(u + 1) * n]),
            Repr::SymmetricPacked { data, .. } => {
                // One pass with an incremental index walk instead of a
                // packed_index multiply per cell: column u of row v and
                // column u of row v+1 are exactly n-v-1 entries apart in
                // the packed triangle, so the whole column above the
                // diagonal is a strided scan starting at packed(0,u) = u.
                let mut idx = u;
                for v in 0..u {
                    out[v] = data[idx];
                    idx += n - v - 1;
                }
                let start = Self::packed_index(n, u, u);
                out[u..n].copy_from_slice(&data[start..start + (n - u)]);
            }
            Repr::RowSparse {
                sources,
                row_of,
                data,
                ..
            } => match row_of[u] {
                NO_ROW => {
                    out.fill(INF);
                    for (i, &s) in sources.iter().enumerate() {
                        let d = data[i * n + u];
                        let slot = &mut out[s as usize];
                        *slot = (*slot).min(d);
                    }
                }
                i => out.copy_from_slice(&data[i as usize * n..(i as usize + 1) * n]),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_absorbs() {
        assert_eq!(dadd(INF, 0), INF);
        assert_eq!(dadd(0, INF), INF);
        assert_eq!(dadd(INF - 1, INF - 1), INF);
    }

    #[test]
    fn finite_sums_are_exact() {
        assert_eq!(dadd(100, 200), 300);
        assert_eq!(dadd(0, 0), 0);
    }

    #[test]
    fn no_overflow_at_extremes() {
        // INF + INF must not wrap around u32.
        assert!(INF.checked_add(INF).is_some());
    }

    #[test]
    fn finiteness_predicate() {
        assert!(is_finite(0));
        assert!(is_finite(INF - 1));
        assert!(!is_finite(INF));
    }

    /// A symmetric 4×4 reference table: d(u,v) = |u-v| except (0,3) missing.
    fn reference_full(n: usize) -> Vec<Dist> {
        let mut data = vec![INF; n * n];
        for u in 0..n {
            for v in 0..n {
                if !(u == 0 && v == n - 1 || v == 0 && u == n - 1) {
                    data[u * n + v] = u.abs_diff(v) as Dist;
                }
            }
        }
        data
    }

    fn packed_from_full(n: usize, full: &[Dist]) -> Vec<Dist> {
        let mut data = Vec::with_capacity(n * (n + 1) / 2);
        for u in 0..n {
            for v in u..n {
                data.push(full[u * n + v]);
            }
        }
        data
    }

    #[test]
    fn layouts_agree_on_get() {
        let n = 4;
        let full_data = reference_full(n);
        let full = DistStorage::full(n, full_data.clone());
        let sym = DistStorage::symmetric_packed(n, packed_from_full(n, &full_data));
        for u in 0..n {
            for v in 0..n {
                assert_eq!(full.get(u, v), sym.get(u, v), "({u},{v})");
            }
        }
        assert_eq!(full.get(0, 3), INF);
        assert_eq!(full.get(9, 0), INF, "out of range is INF");
        assert_eq!(full.kind(), StorageKind::Full);
        assert_eq!(sym.kind(), StorageKind::SymmetricPacked);
    }

    #[test]
    fn symmetric_packed_halves_the_bytes() {
        let n = 64;
        let full = DistStorage::full(n, vec![0; n * n]);
        let sym = DistStorage::symmetric_packed(n, vec![0; n * (n + 1) / 2]);
        assert!(sym.bytes() * 2 <= full.bytes() + n * std::mem::size_of::<Dist>());
        assert!(sym.bytes() < full.bytes() * 55 / 100 + 1);
    }

    #[test]
    fn row_sparse_answers_both_orientations() {
        let n = 5;
        // Source 2 only: row = exact cycle distances from 2 on a 5-cycle.
        let row: Vec<Dist> = vec![2, 1, 0, 1, 2];
        let rs = DistStorage::row_sparse(n, vec![2], row.clone());
        assert_eq!(rs.get(2, 4), 2, "forward row");
        assert_eq!(rs.get(4, 2), 2, "symmetric fallback via the source row");
        assert_eq!(rs.get(0, 1), INF, "neither endpoint is a source");
        assert_eq!(rs.row(2), Some(&row[..]));
        assert_eq!(rs.row(3), None);
        assert_eq!(rs.sources(), Some(&[2u32][..]));
    }

    #[test]
    fn copy_row_matches_get_everywhere() {
        let n = 4;
        let full_data = reference_full(n);
        let storages = [
            DistStorage::full(n, full_data.clone()),
            DistStorage::symmetric_packed(n, packed_from_full(n, &full_data)),
            DistStorage::row_sparse(n, vec![1, 3], {
                let mut rows = full_data[n..2 * n].to_vec();
                rows.extend_from_slice(&full_data[3 * n..4 * n]);
                rows
            }),
        ];
        let mut out = vec![0; n];
        for s in &storages {
            for u in 0..n {
                s.copy_row(u, &mut out);
                for v in 0..n {
                    assert_eq!(out[v], s.get(u, v), "{:?} row {u} col {v}", s.kind());
                }
            }
        }
    }

    #[test]
    fn lookup_reports_the_entry_index() {
        let n = 3;
        let full = DistStorage::full(n, vec![0, 5, 9, 5, 0, 2, 9, 2, 0]);
        assert_eq!(full.lookup(1, 2), Some((2, 5)));
        let sym = DistStorage::symmetric_packed(n, vec![0, 5, 9, 0, 2, 0]);
        assert_eq!(sym.lookup(2, 1), Some((2, 4)), "orientation normalized");
    }

    #[test]
    fn duplicate_sources_first_occurrence_wins() {
        let n = 3;
        // Source 1 listed twice with different rows; lookups must serve the
        // first row. Source list round-trips verbatim.
        let rows = vec![9, 0, 9, /* dup: */ 5, 0, 5];
        let rs = DistStorage::row_sparse(n, vec![1, 1], rows);
        assert_eq!(rs.get(1, 0), 9);
        assert_eq!(rs.get(0, 1), 9);
        assert_eq!(rs.sources(), Some(&[1u32, 1][..]));
        assert_eq!(rs.row(1), Some(&[9, 0, 9][..]));
    }

    #[test]
    fn packed_index_normalizes_orientation() {
        for n in [1usize, 2, 5, 9] {
            let mut seen = vec![false; n * (n + 1) / 2];
            for u in 0..n {
                for v in u..n {
                    let idx = DistStorage::packed_index(n, u, v);
                    assert_eq!(idx, DistStorage::packed_index(n, v, u));
                    assert!(!seen[idx], "index collision at ({u},{v}) n={n}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "surjective for n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "n(n+1)/2")]
    fn packed_length_is_validated() {
        let _ = DistStorage::symmetric_packed(4, vec![0; 9]);
    }
}
