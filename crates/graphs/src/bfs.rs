//! Breadth-first search reference algorithms on unweighted graphs.
//!
//! These are the exact, centralized ground-truth routines against which all
//! Congested Clique algorithms are validated, plus the truncated variants
//! used by the distance-sensitive tool-kit.

use std::collections::VecDeque;

use crate::dist::{Dist, INF};
use crate::graph::Graph;

/// Single-source shortest path distances by BFS.
///
/// Unreachable vertices get [`INF`].
pub fn sssp(g: &Graph, src: usize) -> Vec<Dist> {
    let mut dist = vec![INF; g.n()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == INF {
                dist[v] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Exact all-pairs distances: one BFS per vertex. `O(n·m)` time; ground
/// truth for experiments and tests.
pub fn apsp_exact(g: &Graph) -> Vec<Vec<Dist>> {
    (0..g.n()).map(|v| sssp(g, v)).collect()
}

/// The ball `B(src, radius)`: every vertex within distance `radius`, with its
/// distance, sorted by `(distance, vertex)`.
pub fn ball(g: &Graph, src: usize, radius: Dist) -> Vec<(u32, Dist)> {
    let mut out = Vec::new();
    let mut dist = vec![INF; g.n()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    out.push((src as u32, 0));
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == INF {
                dist[v] = du + 1;
                out.push((v as u32, du + 1));
                q.push_back(v);
            }
        }
    }
    out.sort_unstable_by_key(|&(v, d)| (d, v));
    out
}

/// Size of the ball `B(src, radius)` without materializing it.
pub fn ball_size(g: &Graph, src: usize, radius: Dist) -> usize {
    let mut count = 1usize;
    let mut dist = vec![INF; g.n()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == INF {
                dist[v] = du + 1;
                count += 1;
                q.push_back(v);
            }
        }
    }
    count
}

/// Reference implementation of the `(k,d)`-nearest problem (§2 of the
/// paper): the `k` closest vertices within distance `d` of `src` (all of them
/// if fewer than `k`), ties broken by vertex id, **including `src` itself at
/// distance 0**, sorted by `(distance, vertex)`.
///
/// This computes exactly the object that iterated filtered min-plus squaring
/// computes (Claim 59); `cc-toolkit` cross-checks the two.
pub fn knearest_reference(g: &Graph, src: usize, k: usize, d: Dist) -> Vec<(u32, Dist)> {
    let mut levels: Vec<Vec<u32>> = vec![vec![src as u32]];
    let mut dist = vec![INF; g.n()];
    dist[src] = 0;
    let mut collected = 1usize;
    let mut frontier = vec![src];
    let mut depth: Dist = 0;
    while !frontier.is_empty() && depth < d && collected < g.n() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if dist[v] == INF {
                    dist[v] = depth + 1;
                    next.push(v);
                }
            }
        }
        depth += 1;
        if next.is_empty() {
            break;
        }
        collected += next.len();
        levels.push(next.iter().map(|&v| v as u32).collect());
        frontier = next;
        if collected >= k {
            break;
        }
    }
    let mut out = Vec::with_capacity(collected.min(k));
    'outer: for (d_level, level) in levels.iter_mut().enumerate() {
        level.sort_unstable();
        for &v in level.iter() {
            out.push((v, d_level as Dist));
            if out.len() == k {
                break 'outer;
            }
        }
    }
    out
}

/// Multi-source BFS: distance from each vertex to the nearest source, plus
/// that source's id (ties broken by BFS order, then smallest source id at
/// equal distance).
pub fn nearest_source(g: &Graph, sources: &[usize]) -> (Vec<Dist>, Vec<Option<u32>>) {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut owner: Vec<Option<u32>> = vec![None; n];
    let mut q = VecDeque::new();
    let mut sorted: Vec<usize> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &s in &sorted {
        dist[s] = 0;
        owner[s] = Some(s as u32);
        q.push_back(s);
    }
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == INF {
                dist[v] = du + 1;
                owner[v] = owner[u];
                q.push_back(v);
            }
        }
    }
    (dist, owner)
}

/// Eccentricity of `src` (max finite distance from it).
pub fn eccentricity(g: &Graph, src: usize) -> Dist {
    sssp(g, src)
        .into_iter()
        .filter(|&d| d < INF)
        .max()
        .unwrap_or(0)
}

/// Graph diameter (max eccentricity over vertices); `O(n·m)`.
pub fn diameter(g: &Graph) -> Dist {
    (0..g.n()).map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn sssp_on_path() {
        let g = generators::path(5);
        assert_eq!(sssp(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(sssp(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn sssp_unreachable_is_inf() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn ball_respects_radius() {
        let g = generators::path(10);
        let b = ball(&g, 5, 2);
        let ids: Vec<u32> = b.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![5, 4, 6, 3, 7]);
        assert_eq!(ball_size(&g, 5, 2), 5);
    }

    #[test]
    fn ball_zero_radius_is_self() {
        let g = generators::cycle(6);
        assert_eq!(ball(&g, 2, 0), vec![(2, 0)]);
        assert_eq!(ball_size(&g, 2, 0), 1);
    }

    #[test]
    fn knearest_matches_ball_prefix() {
        let g = generators::grid(5, 5);
        for v in 0..g.n() {
            let b = ball(&g, v, 3);
            for k in [1usize, 3, 7, 100] {
                let got = knearest_reference(&g, v, k, 3);
                let want: Vec<(u32, Dist)> = b.iter().copied().take(k).collect();
                assert_eq!(got, want, "v={v} k={k}");
            }
        }
    }

    #[test]
    fn knearest_distance_bound_binds() {
        let g = generators::path(10);
        // Only 3 vertices within distance 1 of vertex 5.
        let got = knearest_reference(&g, 5, 10, 1);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, d)| d <= 1));
    }

    #[test]
    fn nearest_source_ownership() {
        let g = generators::path(7);
        let (dist, owner) = nearest_source(&g, &[0, 6]);
        assert_eq!(dist[3], 3);
        assert_eq!(owner[1], Some(0));
        assert_eq!(owner[5], Some(6));
    }

    #[test]
    fn diameter_of_known_families() {
        assert_eq!(diameter(&generators::path(10)), 9);
        assert_eq!(diameter(&generators::cycle(10)), 5);
        assert_eq!(diameter(&generators::complete(5)), 1);
    }

    #[test]
    fn apsp_is_symmetric() {
        let g = generators::grid(4, 3);
        let d = apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(d[u][v], d[v][u]);
            }
            assert_eq!(d[u][u], 0);
        }
    }
}
