//! Stretch evaluation: comparing distance estimates against ground truth.
//!
//! Every approximation algorithm in this workspace is validated through this
//! module: given exact distances and an estimate oracle, it produces a
//! [`StretchReport`] with the worst and average multiplicative stretch, the
//! worst additive residual beyond a `(1+ε)` multiplicative allowance (for
//! `(1+ε, β)` guarantees), and lower-bound violations (estimates below the
//! true distance, which correct algorithms must never produce).

use crate::dist::{Dist, INF};

/// Summary of estimate quality over a set of vertex pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StretchReport {
    /// The `ε` the additive residual was computed against (the residual is
    /// `est − (1+ε)d`, so it is only meaningful for this ε). Recorded so
    /// [`StretchReport::satisfies`] can reject validation against a
    /// different ε than [`evaluate`] used.
    pub eps: f64,
    /// Number of (ordered) pairs evaluated with finite true distance > 0.
    pub pairs: usize,
    /// Maximum `est/d` over evaluated pairs.
    pub max_multiplicative: f64,
    /// Mean `est/d` over evaluated pairs.
    pub mean_multiplicative: f64,
    /// Maximum `est − (1+ε)·d` over evaluated pairs (the additive residual
    /// for a `(1+ε, β)` guarantee); ≤ β for a correct near-additive scheme.
    pub max_additive_residual: f64,
    /// Pairs where `est < d` (must be 0 for any correct algorithm).
    pub lower_violations: usize,
    /// Pairs with finite true distance but infinite estimate.
    pub missed: usize,
}

impl StretchReport {
    /// `true` when the report witnesses a `(1+ε, β)` guarantee.
    ///
    /// The residual column was computed against the ε passed to
    /// [`evaluate`]; validating the same report against a *different* ε
    /// would silently vouch for a guarantee that was never measured, so a
    /// mismatched ε returns `false`.
    pub fn satisfies(&self, eps: f64, beta: f64) -> bool {
        (eps - self.eps).abs() <= 1e-12
            && self.lower_violations == 0
            && self.missed == 0
            && self.max_additive_residual <= beta + 1e-9
    }

    /// `true` when the report witnesses a pure multiplicative `α` guarantee.
    pub fn satisfies_multiplicative(&self, alpha: f64) -> bool {
        self.lower_violations == 0 && self.missed == 0 && self.max_multiplicative <= alpha + 1e-9
    }
}

/// Evaluates an estimate oracle against exact all-pairs distances.
///
/// `eps` parameterizes the additive residual column (`est − (1+ε)d`).
/// Pairs with `d = 0` or `d = INF` are skipped (but an infinite estimate for
/// a finite distance counts as `missed`).
pub fn evaluate<F>(exact: &[Vec<Dist>], estimate: F, eps: f64) -> StretchReport
where
    F: Fn(usize, usize) -> Dist,
{
    let n = exact.len();
    let mut pairs = 0usize;
    let mut max_mult = 0.0f64;
    let mut sum_mult = 0.0f64;
    let mut max_resid = f64::NEG_INFINITY;
    let mut lower = 0usize;
    let mut missed = 0usize;
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let d = exact[u][v];
            if d == 0 || d >= INF {
                continue;
            }
            let est = estimate(u, v);
            if est >= INF {
                missed += 1;
                continue;
            }
            pairs += 1;
            if est < d {
                lower += 1;
            }
            let ratio = est as f64 / d as f64;
            max_mult = max_mult.max(ratio);
            sum_mult += ratio;
            let resid = est as f64 - (1.0 + eps) * d as f64;
            max_resid = max_resid.max(resid);
        }
    }
    StretchReport {
        eps,
        pairs,
        max_multiplicative: max_mult,
        mean_multiplicative: if pairs > 0 {
            sum_mult / pairs as f64
        } else {
            0.0
        },
        max_additive_residual: if pairs > 0 { max_resid } else { 0.0 },
        lower_violations: lower,
        missed,
    }
}

/// Evaluates only pairs whose true distance lies in `[lo, hi]`.
pub fn evaluate_range<F>(
    exact: &[Vec<Dist>],
    estimate: F,
    eps: f64,
    lo: Dist,
    hi: Dist,
) -> StretchReport
where
    F: Fn(usize, usize) -> Dist,
{
    let filtered: Vec<Vec<Dist>> = exact
        .iter()
        .map(|row| {
            row.iter()
                .map(|&d| if d >= lo && d <= hi { d } else { INF })
                .collect()
        })
        .collect();
    evaluate(&filtered, estimate, eps)
}

/// One row of a distance-bucketed quality profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bucket {
    /// Inclusive lower distance bound of the bucket.
    pub lo: Dist,
    /// Inclusive upper distance bound of the bucket.
    pub hi: Dist,
    /// Pairs in the bucket.
    pub pairs: usize,
    /// Maximum multiplicative ratio in the bucket.
    pub max_ratio: f64,
    /// Mean multiplicative ratio in the bucket.
    pub mean_ratio: f64,
}

/// Buckets pair quality by true distance into geometric ranges
/// `[1,1], [2,3], [4,7], …` — used by experiment F2 to show that a
/// `(1+ε, β)` estimate behaves like `(1+Θ(ε))` for `d = Ω(β/ε)`.
pub fn bucketed_profile<F>(exact: &[Vec<Dist>], estimate: F) -> Vec<Bucket>
where
    F: Fn(usize, usize) -> Dist,
{
    let n = exact.len();
    let max_d = exact
        .iter()
        .flat_map(|r| r.iter().copied())
        .filter(|&d| d < INF)
        .max()
        .unwrap_or(0);
    let mut buckets: Vec<Bucket> = Vec::new();
    let mut lo: Dist = 1;
    while lo <= max_d {
        let hi = (lo * 2 - 1).min(max_d);
        buckets.push(Bucket {
            lo,
            hi,
            pairs: 0,
            max_ratio: 0.0,
            mean_ratio: 0.0,
        });
        lo *= 2;
    }
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let d = exact[u][v];
            if d == 0 || d >= INF {
                continue;
            }
            let est = estimate(u, v);
            if est >= INF {
                continue;
            }
            let ratio = est as f64 / d as f64;
            let b = (d as f64).log2().floor() as usize;
            if let Some(bucket) = buckets.get_mut(b) {
                bucket.pairs += 1;
                bucket.max_ratio = bucket.max_ratio.max(ratio);
                bucket.mean_ratio += ratio;
            }
        }
    }
    for b in &mut buckets {
        if b.pairs > 0 {
            b.mean_ratio /= b.pairs as f64;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::generators;

    #[test]
    fn exact_estimates_have_unit_stretch() {
        let g = generators::grid(4, 4);
        let exact = bfs::apsp_exact(&g);
        let report = evaluate(&exact, |u, v| exact[u][v], 0.0);
        assert_eq!(report.lower_violations, 0);
        assert_eq!(report.missed, 0);
        assert!((report.max_multiplicative - 1.0).abs() < 1e-12);
        assert!(report.satisfies(0.0, 0.0));
        assert!(report.satisfies_multiplicative(1.0));
    }

    #[test]
    fn doubling_estimate_has_stretch_two() {
        let g = generators::cycle(10);
        let exact = bfs::apsp_exact(&g);
        let report = evaluate(&exact, |u, v| exact[u][v] * 2, 0.0);
        assert!((report.max_multiplicative - 2.0).abs() < 1e-12);
        assert!(report.satisfies_multiplicative(2.0));
        assert!(!report.satisfies_multiplicative(1.9));
    }

    #[test]
    fn lower_violation_detected() {
        let g = generators::path(5);
        let exact = bfs::apsp_exact(&g);
        let report = evaluate(&exact, |_, _| 1, 0.0);
        assert!(report.lower_violations > 0);
        assert!(!report.satisfies(0.0, 100.0));
    }

    #[test]
    fn missed_pairs_detected() {
        let g = generators::path(4);
        let exact = bfs::apsp_exact(&g);
        let report = evaluate(
            &exact,
            |u, v| if u == 0 && v == 3 { INF } else { exact[u][v] },
            0.0,
        );
        assert_eq!(report.missed, 1);
    }

    #[test]
    fn mismatched_eps_is_rejected() {
        // Regression: `satisfies` used to ignore its ε argument entirely, so
        // a report computed with one ε could "validate" any other ε ≥ 0.
        let g = generators::path(10);
        let exact = bfs::apsp_exact(&g);
        let report = evaluate(&exact, |u, v| exact[u][v], 0.1);
        assert!((report.eps - 0.1).abs() < 1e-15);
        assert!(report.satisfies(0.1, 0.0));
        // Same residuals, different claimed ε: must be rejected even with a
        // generous β.
        assert!(!report.satisfies(0.2, 100.0));
        assert!(!report.satisfies(0.0, 100.0));
    }

    #[test]
    fn additive_residual_measures_beta() {
        let g = generators::path(20);
        let exact = bfs::apsp_exact(&g);
        // Estimate d + 3: a (1+0, 3) guarantee.
        let report = evaluate(&exact, |u, v| exact[u][v] + 3, 0.0);
        assert!((report.max_additive_residual - 3.0).abs() < 1e-9);
        assert!(report.satisfies(0.0, 3.0));
        assert!(!report.satisfies(0.0, 2.9));
    }

    #[test]
    fn range_evaluation_filters() {
        let g = generators::path(20);
        let exact = bfs::apsp_exact(&g);
        // Estimate adds +5 only for short pairs; long pairs exact.
        let est = |u: usize, v: usize| {
            if exact[u][v] <= 3 {
                exact[u][v] + 5
            } else {
                exact[u][v]
            }
        };
        let long = evaluate_range(&exact, est, 0.0, 4, INF - 1);
        assert!(long.satisfies(0.0, 0.0));
        let short = evaluate_range(&exact, est, 0.0, 1, 3);
        assert!((short.max_additive_residual - 5.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_partition_pairs() {
        let g = generators::path(17);
        let exact = bfs::apsp_exact(&g);
        let buckets = bucketed_profile(&exact, |u, v| exact[u][v]);
        let total: usize = buckets.iter().map(|b| b.pairs).sum();
        // All ordered pairs u≠v have finite distance on a path.
        assert_eq!(total, 17 * 16);
        for b in &buckets {
            if b.pairs > 0 {
                assert!((b.mean_ratio - 1.0).abs() < 1e-12);
            }
        }
    }
}
