//! Graph generators for tests and experiments.
//!
//! Random generators take an explicit `&mut impl Rng` so that every
//! experiment is reproducible from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Graph;

/// Path on `n` vertices (`0 — 1 — … — n−1`).
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star with center 0 and `n − 1` leaves.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, &edges)
}

/// `w × h` torus (grid with wraparound).
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3` (wraparound would create parallel edges).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs dimensions ≥ 3");
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            edges.push((idx(x, y), idx((x + 1) % w, y)));
            edges.push((idx(x, y), idx(x, (y + 1) % h)));
        }
    }
    Graph::from_edges(w * h, &edges)
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Connected `G(n, p)`: a uniform random spanning tree plus `G(n, p)` edges.
/// Guaranteed connected; edge count ≈ `n − 1 + p·n(n−1)/2`.
pub fn connected_gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut edges = random_tree_edges(n, rng);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

fn random_tree_edges(n: usize, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    // Random attachment order over a random permutation: each new vertex
    // attaches to a uniformly random earlier vertex.
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.push((perm[i], perm[j]));
    }
    edges
}

/// Uniformly-grown random tree on `n` vertices.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    Graph::from_edges(n, &random_tree_edges(n, rng))
}

/// Preferential-attachment (Barabási–Albert-style) graph: starts from a small
/// clique of `m0 + 1` vertices; each new vertex attaches to `m0` distinct
/// existing vertices chosen proportionally to degree.
///
/// # Panics
///
/// Panics if `m0 == 0` or `n ≤ m0`.
pub fn preferential_attachment(n: usize, m0: usize, rng: &mut impl Rng) -> Graph {
    assert!(m0 >= 1, "attachment degree must be positive");
    assert!(n > m0, "need more vertices than the attachment degree");
    let mut edges = Vec::new();
    // Repeated-endpoint list: sampling an index uniformly is degree-biased.
    let mut endpoints: Vec<usize> = Vec::new();
    let seed = m0 + 1;
    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed..n {
        let mut chosen = Vec::with_capacity(m0);
        let mut guard = 0;
        while chosen.len() < m0 && guard < 100 * m0 {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Connected caveman graph: `cliques` cliques of `size` vertices arranged in
/// a ring, adjacent cliques joined by one edge. High local density, large
/// diameter — a stress case for near-additive emulators.
///
/// # Panics
///
/// Panics if `cliques < 3` or `size < 2`.
pub fn caveman(cliques: usize, size: usize) -> Graph {
    assert!(cliques >= 3, "caveman ring needs at least 3 cliques");
    assert!(size >= 2, "cliques need at least 2 vertices");
    let n = cliques * size;
    let mut edges = Vec::new();
    for c in 0..cliques {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push((base + u, base + v));
            }
        }
        // Bridge from last vertex of this clique to first of the next.
        let next = ((c + 1) % cliques) * size;
        edges.push((base + size - 1, next));
    }
    Graph::from_edges(n, &edges)
}

/// Random `d`-regular-ish graph by stub matching (retries collisions; the
/// result has maximum degree `d` and average degree close to `d`).
pub fn random_regular_ish(n: usize, d: usize, rng: &mut impl Rng) -> Graph {
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut edges = Vec::new();
    for pair in stubs.chunks(2) {
        if let [u, v] = *pair {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its `k/2` nearest neighbors on each side, with every edge rewired to a
/// random endpoint with probability `p`.
///
/// # Panics
///
/// Panics if `k < 2`, `k` is odd, or `n ≤ k`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "need n > k");
    let mut edges = Vec::new();
    for v in 0..n {
        for j in 1..=(k / 2) {
            let u = (v + j) % n;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                // Rewire: random endpoint avoiding self-loop.
                let mut w = rng.gen_range(0..n);
                if w == v {
                    w = (w + 1) % n;
                }
                edges.push((v, w));
            } else {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The `d`-dimensional hypercube (`2^d` vertices; vertices adjacent iff
/// their labels differ in one bit).
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=20).contains(&d), "dimension must be in 1..=20");
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if u > v {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Complete bipartite graph `K_{a,b}` (vertices `0..a` on one side).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, &edges)
}

/// Barbell: two `k`-cliques connected by a path of `bridge` vertices.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u, v));
            edges.push((k + bridge + u, k + bridge + v));
        }
    }
    // Path through the bridge.
    let mut prev = k - 1;
    for b in 0..bridge {
        edges.push((prev, k + b));
        prev = k + b;
    }
    edges.push((prev, k + bridge));
    Graph::from_edges(n, &edges)
}

/// The standard seeded test-suite of graph families used across experiments.
///
/// Returns `(name, graph)` pairs, all with roughly `n` vertices.
pub fn standard_suite(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let side = (n as f64).sqrt().round() as usize;
    vec![
        ("gnp-sparse", connected_gnp(n, 4.0 / n as f64, &mut rng)),
        ("gnp-dense", connected_gnp(n, 32.0 / n as f64, &mut rng)),
        ("cycle", cycle(n.max(3))),
        ("grid", grid(side.max(2), side.max(2))),
        ("caveman", caveman((n / 8).max(3), 8)),
        (
            "pref-attach",
            preferential_attachment(n.max(4), 3, &mut rng),
        ),
        ("tree", random_tree(n, &mut rng)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.m(), 7);
        assert!((0..7).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 4 * 2 + 3 * 3); // horizontal rows + vertical cols
        assert!(g.is_connected());
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!((0..g.n()).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 100;
        let p = 0.1;
        let g = gnp(n, p, &mut rng(1));
        let expect = p * (n * (n - 1)) as f64 / 2.0;
        let got = g.m() as f64;
        assert!((got - expect).abs() < 0.35 * expect, "m = {got}");
    }

    #[test]
    fn connected_gnp_is_connected() {
        for seed in 0..5 {
            let g = connected_gnp(60, 0.01, &mut rng(seed));
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let g = random_tree(50, &mut rng(2));
        assert_eq!(g.m(), 49);
        assert!(g.is_connected());
    }

    #[test]
    fn preferential_attachment_is_connected_with_hubs() {
        let g = preferential_attachment(200, 2, &mut rng(3));
        assert!(g.is_connected());
        assert!(
            g.max_degree() >= 8,
            "expected hubs, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(4, 5);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        // Ring of cliques has diameter roughly cliques/2 · 2.
        assert!(crate::bfs::diameter(&g) >= 4);
    }

    #[test]
    fn barbell_diameter_spans_bridge() {
        let g = barbell(4, 3);
        assert!(g.is_connected());
        assert_eq!(crate::bfs::diameter(&g), 3 + 2 + 1);
    }

    #[test]
    fn regular_ish_degree_bound() {
        let g = random_regular_ish(80, 6, &mut rng(4));
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn watts_strogatz_shapes() {
        // p = 0: pure ring lattice, exactly nk/2 edges, diameter ~ n/k.
        let g = watts_strogatz(24, 4, 0.0, &mut rng(1));
        assert_eq!(g.m(), 24 * 2);
        assert!((0..24).all(|v| g.degree(v) == 4));
        // p = 0.3: same edge count (rewiring preserves count up to dedup),
        // smaller diameter w.h.p.
        let g0 = watts_strogatz(100, 4, 0.0, &mut rng(2));
        let g3 = watts_strogatz(100, 4, 0.3, &mut rng(2));
        assert!(crate::bfs::diameter(&g3) <= crate::bfs::diameter(&g0));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 16 * 4 / 2);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert_eq!(crate::bfs::diameter(&g), 4);
        // Distance = Hamming distance.
        let d = crate::bfs::sssp(&g, 0);
        for v in 0..16usize {
            assert_eq!(d[v], v.count_ones());
        }
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(crate::bfs::diameter(&g), 2);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn standard_suite_all_connected() {
        for (name, g) in standard_suite(64, 11) {
            assert!(g.n() >= 32, "{name} too small: {}", g.n());
            assert!(g.is_connected(), "{name} not connected");
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = cycle(2);
    }
}
