//! Shortest paths on weighted graphs: Dijkstra and hop-limited
//! Bellman–Ford (the computation behind `(S,d)`-source detection).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist::{dadd, Dist, INF};
use crate::graph::WeightedGraph;

/// Single-source shortest path distances on a weighted graph (Dijkstra).
pub fn sssp(g: &WeightedGraph, src: usize) -> Vec<Dist> {
    let mut dist = vec![INF; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0 as Dist, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            let nd = dadd(d, w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Exact all-pairs distances on a weighted graph (one Dijkstra per vertex).
pub fn apsp_exact(g: &WeightedGraph) -> Vec<Vec<Dist>> {
    (0..g.n()).map(|v| sssp(g, v)).collect()
}

/// Dijkstra with predecessor tracking: returns `(dist, parent)` where
/// `parent[v]` is the predecessor of `v` on a shortest path from `src`
/// (`None` for `src` and unreachable vertices). Ties are broken toward the
/// smaller predecessor id, making paths deterministic.
pub fn sssp_with_parents(g: &WeightedGraph, src: usize) -> (Vec<Dist>, Vec<Option<u32>>) {
    let mut dist = vec![INF; g.n()];
    let mut parent: Vec<Option<u32>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0 as Dist, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            let nd = dadd(d, w);
            if nd < dist[v] || (nd == dist[v] && parent[v].is_some_and(|p| (u as u32) < p)) {
                let improved = nd < dist[v];
                dist[v] = nd;
                parent[v] = Some(u as u32);
                if improved {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the shortest path from `src` to `dst` using the parent
/// array of [`sssp_with_parents`]. Returns the vertex sequence
/// `src, …, dst`, or `None` if `dst` is unreachable.
pub fn path_from_parents(parent: &[Option<u32>], src: usize, dst: usize) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur] {
        cur = p as usize;
        path.push(cur);
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > parent.len() {
            return None; // cycle guard (corrupt parent array)
        }
    }
    None
}

/// `h`-hop-limited distances from every vertex to every source: result
/// `dist[v][i]` is the length of the shortest path from `v` to `sources[i]`
/// using at most `h` edges of `g` (`INF` if none).
///
/// This is the centralized computation performed by the `(S,d)`-source
/// detection primitive of Thm 11; the round cost is charged separately by the
/// caller.
pub fn hop_limited_from_sources(g: &WeightedGraph, sources: &[usize], h: usize) -> Vec<Vec<Dist>> {
    let n = g.n();
    let s = sources.len();
    // dist[v][i]; computed per source with its own frontier (sources are
    // independent, and per-source frontiers settle much faster in practice
    // than a joint sweep).
    let mut dist = vec![vec![INF; s]; n];
    let mut cur: Vec<Dist> = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        cur.clear();
        cur.resize(n, INF);
        cur[src] = 0;
        // Frontier entries carry the distance at enqueue time so that a
        // value improved during hop j only propagates at hop j+1 (strict
        // synchronous hop semantics).
        let mut frontier: Vec<(usize, Dist)> = vec![(src, 0)];
        let mut slot = vec![usize::MAX; n];
        for _hop in 0..h {
            let mut next: Vec<(usize, Dist)> = Vec::new();
            for &(u, du) in &frontier {
                for &(v, w) in g.neighbors(u) {
                    let v = v as usize;
                    let nd = dadd(du, w);
                    if nd < cur[v] {
                        cur[v] = nd;
                        if slot[v] == usize::MAX {
                            slot[v] = next.len();
                            next.push((v, nd));
                        } else {
                            next[slot[v]].1 = nd;
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for &(v, _) in &next {
                slot[v] = usize::MAX;
            }
            frontier = next;
        }
        for (v, row) in dist.iter_mut().enumerate() {
            row[i] = cur[v];
        }
    }
    dist
}

/// `h`-hop-limited single-pair check: length of the shortest `≤ h`-edge path
/// between `u` and `v` (`INF` if none). `O(h·m)`; used by tests to verify
/// hopset guarantees.
pub fn hop_limited_pair(g: &WeightedGraph, u: usize, v: usize, h: usize) -> Dist {
    hop_limited_from_sources(g, &[u], h)[v][0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = generators::grid(4, 4);
        let wg = WeightedGraph::from_unweighted(&g);
        for v in 0..g.n() {
            assert_eq!(sssp(&wg, v), crate::bfs::sssp(&g, v));
        }
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        // 0 -5- 1, 0 -1- 2 -1- 1: the two-hop path is shorter.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 5), (0, 2, 1), (2, 1, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d[1], 2);
    }

    #[test]
    fn parallel_edges_take_min() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 7), (0, 1, 3)]);
        assert_eq!(sssp(&g, 0)[1], 3);
    }

    #[test]
    fn hop_limit_binds() {
        // Path of weight-1 edges: 0-1-2-3; and a heavy direct edge 0-3.
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]);
        assert_eq!(hop_limited_pair(&g, 0, 3, 3), 3);
        assert_eq!(hop_limited_pair(&g, 0, 3, 2), 10);
        assert_eq!(hop_limited_pair(&g, 0, 3, 1), 10);
        let iso = WeightedGraph::from_edges(4, &[(0, 1, 1)]);
        assert_eq!(hop_limited_pair(&iso, 0, 3, 5), INF);
    }

    #[test]
    fn hop_limited_multi_source_agrees_with_single() {
        let g = generators::gnp(40, 0.1, &mut seeded(3));
        let wg = WeightedGraph::from_unweighted(&g);
        let sources = [0usize, 5, 17];
        let all = hop_limited_from_sources(&wg, &sources, 4);
        for (i, &s) in sources.iter().enumerate() {
            let single = hop_limited_from_sources(&wg, &[s], 4);
            for v in 0..g.n() {
                assert_eq!(all[v][i], single[v][0]);
            }
        }
    }

    #[test]
    fn enough_hops_equals_dijkstra() {
        let g = generators::gnp(30, 0.15, &mut seeded(9));
        let wg = WeightedGraph::from_unweighted(&g);
        let hops = g.n();
        let hl = hop_limited_from_sources(&wg, &[0], hops);
        let dj = sssp(&wg, 0);
        for v in 0..g.n() {
            assert_eq!(hl[v][0], dj[v]);
        }
    }

    #[test]
    fn parents_reconstruct_shortest_paths() {
        let g = generators::grid(5, 5);
        let wg = WeightedGraph::from_unweighted(&g);
        let (dist, parent) = sssp_with_parents(&wg, 0);
        for v in 0..g.n() {
            let path = path_from_parents(&parent, 0, v).expect("grid is connected");
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), v);
            // Path length (in weight) must equal the distance.
            let mut total = 0;
            for w in path.windows(2) {
                let weight = wg
                    .neighbors(w[0])
                    .iter()
                    .filter(|&&(x, _)| x as usize == w[1])
                    .map(|&(_, wt)| wt)
                    .min()
                    .expect("consecutive path vertices are adjacent");
                total += weight;
            }
            assert_eq!(total, dist[v], "path to {v}");
        }
    }

    #[test]
    fn unreachable_path_is_none() {
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 1)]);
        let (_, parent) = sssp_with_parents(&wg, 0);
        assert_eq!(path_from_parents(&parent, 0, 2), None);
        assert_eq!(path_from_parents(&parent, 0, 0), Some(vec![0]));
    }

    #[test]
    fn parent_distances_agree_with_plain_sssp() {
        let g = generators::gnp(40, 0.12, &mut seeded(17));
        let wg = WeightedGraph::from_unweighted(&g);
        let (dist, _) = sssp_with_parents(&wg, 3);
        assert_eq!(dist, sssp(&wg, 3));
    }

    #[test]
    fn empty_graph_all_inf() {
        let g = Graph::from_edges(3, &[]);
        let wg = WeightedGraph::from_unweighted(&g);
        let d = sssp(&wg, 0);
        assert_eq!(d, vec![0, INF, INF]);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
