//! Shortest paths on weighted graphs: Dijkstra and hop-limited
//! Bellman–Ford (the computation behind `(S,d)`-source detection).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist::{dadd, Dist, INF};
use crate::graph::WeightedGraph;

/// Single-source shortest path distances on a weighted graph (Dijkstra).
pub fn sssp(g: &WeightedGraph, src: usize) -> Vec<Dist> {
    let mut dist = vec![INF; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0 as Dist, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            let nd = dadd(d, w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Exact all-pairs distances on a weighted graph (one Dijkstra per vertex).
pub fn apsp_exact(g: &WeightedGraph) -> Vec<Vec<Dist>> {
    (0..g.n()).map(|v| sssp(g, v)).collect()
}

/// Dijkstra with predecessor tracking: returns `(dist, parent)` where
/// `parent[v]` is the predecessor of `v` on a shortest path from `src`
/// (`None` for `src` and unreachable vertices). Ties are broken toward the
/// smaller predecessor id, making paths deterministic.
pub fn sssp_with_parents(g: &WeightedGraph, src: usize) -> (Vec<Dist>, Vec<Option<u32>>) {
    let mut dist = vec![INF; g.n()];
    let mut parent: Vec<Option<u32>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0 as Dist, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            let nd = dadd(d, w);
            if nd < dist[v] || (nd == dist[v] && parent[v].is_some_and(|p| (u as u32) < p)) {
                let improved = nd < dist[v];
                dist[v] = nd;
                parent[v] = Some(u as u32);
                if improved {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    (dist, parent)
}

/// A rooted shortest-path tree: distances plus deterministic predecessors,
/// the exact reference object route reconstruction is validated against.
///
/// Built by [`sssp_tree`]; wraps the `(dist, parent)` arrays of
/// [`sssp_with_parents`] behind path-level queries so tests and benches stop
/// re-implementing parent walking by hand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShortestPathTree {
    src: usize,
    dist: Vec<Dist>,
    parent: Vec<Option<u32>>,
}

impl ShortestPathTree {
    /// The root.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Distance from the root to `v` ([`INF`] when unreachable).
    pub fn dist(&self, v: usize) -> Dist {
        self.dist[v]
    }

    /// The full distance row.
    pub fn dists(&self) -> &[Dist] {
        &self.dist
    }

    /// The predecessor of `v` on its shortest path from the root (`None`
    /// for the root and unreachable vertices).
    pub fn parent(&self, v: usize) -> Option<u32> {
        self.parent[v]
    }

    /// The shortest path `src, …, v` as a vertex sequence, or `None` when
    /// `v` is unreachable.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        path_from_parents(&self.parent, self.src, v)
    }

    /// The shortest path to `v` as directed edges `(x, y)`, or `None` when
    /// unreachable. An empty vector for `v == src`.
    pub fn edges_to(&self, v: usize) -> Option<Vec<(u32, u32)>> {
        let verts = self.path_to(v)?;
        Some(
            verts
                .windows(2)
                .map(|w| (w[0] as u32, w[1] as u32))
                .collect(),
        )
    }
}

/// Single-source shortest paths with deterministic predecessor tracking,
/// packaged as a [`ShortestPathTree`].
pub fn sssp_tree(g: &WeightedGraph, src: usize) -> ShortestPathTree {
    let (dist, parent) = sssp_with_parents(g, src);
    ShortestPathTree { src, dist, parent }
}

/// Reconstructs the shortest path from `src` to `dst` using the parent
/// array of [`sssp_with_parents`]. Returns the vertex sequence
/// `src, …, dst`, or `None` if `dst` is unreachable.
pub fn path_from_parents(parent: &[Option<u32>], src: usize, dst: usize) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur] {
        cur = p as usize;
        path.push(cur);
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > parent.len() {
            return None; // cycle guard (corrupt parent array)
        }
    }
    None
}

/// `h`-hop-limited distances from every vertex to every source: result
/// `dist[v][i]` is the length of the shortest path from `v` to `sources[i]`
/// using at most `h` edges of `g` (`INF` if none).
///
/// This is the centralized computation performed by the `(S,d)`-source
/// detection primitive of Thm 11; the round cost is charged separately by the
/// caller.
pub fn hop_limited_from_sources(g: &WeightedGraph, sources: &[usize], h: usize) -> Vec<Vec<Dist>> {
    let n = g.n();
    let s = sources.len();
    // dist[v][i]; computed per source with its own frontier (sources are
    // independent, and per-source frontiers settle much faster in practice
    // than a joint sweep).
    let mut dist = vec![vec![INF; s]; n];
    let mut cur: Vec<Dist> = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        cur.clear();
        cur.resize(n, INF);
        cur[src] = 0;
        // Frontier entries carry the distance at enqueue time so that a
        // value improved during hop j only propagates at hop j+1 (strict
        // synchronous hop semantics).
        let mut frontier: Vec<(usize, Dist)> = vec![(src, 0)];
        let mut slot = vec![usize::MAX; n];
        for _hop in 0..h {
            let mut next: Vec<(usize, Dist)> = Vec::new();
            for &(u, du) in &frontier {
                for &(v, w) in g.neighbors(u) {
                    let v = v as usize;
                    let nd = dadd(du, w);
                    if nd < cur[v] {
                        cur[v] = nd;
                        if slot[v] == usize::MAX {
                            slot[v] = next.len();
                            next.push((v, nd));
                        } else {
                            next[slot[v]].1 = nd;
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for &(v, _) in &next {
                slot[v] = usize::MAX;
            }
            frontier = next;
        }
        for (v, row) in dist.iter_mut().enumerate() {
            row[i] = cur[v];
        }
    }
    dist
}

/// [`hop_limited_from_sources`] with per-source predecessor tracking:
/// additionally returns `parents[i][v]`, the predecessor of `v` on the
/// hop-limited search from `sources[i]` (`u32::MAX` for the source itself
/// and unreached vertices).
///
/// Walking the parent chain from `v` back to the source yields a real walk
/// in `g`; because every parent assignment strictly lowered the tentative
/// distance, distances strictly decrease along the chain (so it terminates
/// at the source) and the walk's weight is **at most** `dist[v][i]` — late
/// relaxations can only shorten the recorded prefix.
pub fn hop_limited_from_sources_with_parents(
    g: &WeightedGraph,
    sources: &[usize],
    h: usize,
) -> (Vec<Vec<Dist>>, Vec<Vec<u32>>) {
    let n = g.n();
    let s = sources.len();
    let mut dist = vec![vec![INF; s]; n];
    let mut parents: Vec<Vec<u32>> = vec![vec![u32::MAX; n]; s];
    let mut cur: Vec<Dist> = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        cur.clear();
        cur.resize(n, INF);
        cur[src] = 0;
        let parent = &mut parents[i];
        let mut frontier: Vec<(usize, Dist)> = vec![(src, 0)];
        let mut slot = vec![usize::MAX; n];
        for _hop in 0..h {
            let mut next: Vec<(usize, Dist)> = Vec::new();
            for &(u, du) in &frontier {
                for &(v, w) in g.neighbors(u) {
                    let v = v as usize;
                    let nd = dadd(du, w);
                    if nd < cur[v] {
                        cur[v] = nd;
                        parent[v] = u as u32;
                        if slot[v] == usize::MAX {
                            slot[v] = next.len();
                            next.push((v, nd));
                        } else {
                            next[slot[v]].1 = nd;
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for &(v, _) in &next {
                slot[v] = usize::MAX;
            }
            frontier = next;
        }
        for (v, row) in dist.iter_mut().enumerate() {
            row[i] = cur[v];
        }
    }
    (dist, parents)
}

/// Walks a hop-limited parent row back from `v`, returning the vertex
/// sequence `src, …, v` (`None` when `v` was not reached or `parents` is
/// inconsistent).
pub fn chain_from_hop_parents(parents: &[u32], src: usize, v: usize) -> Option<Vec<usize>> {
    if src == v {
        return Some(vec![src]);
    }
    let mut chain = vec![v];
    let mut cur = v;
    while parents[cur] != u32::MAX {
        cur = parents[cur] as usize;
        chain.push(cur);
        if cur == src {
            chain.reverse();
            return Some(chain);
        }
        if chain.len() > parents.len() {
            return None; // cycle guard (corrupt parent array)
        }
    }
    None
}

/// `h`-hop-limited single-pair check: length of the shortest `≤ h`-edge path
/// between `u` and `v` (`INF` if none). `O(h·m)`; used by tests to verify
/// hopset guarantees.
pub fn hop_limited_pair(g: &WeightedGraph, u: usize, v: usize, h: usize) -> Dist {
    hop_limited_from_sources(g, &[u], h)[v][0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = generators::grid(4, 4);
        let wg = WeightedGraph::from_unweighted(&g);
        for v in 0..g.n() {
            assert_eq!(sssp(&wg, v), crate::bfs::sssp(&g, v));
        }
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        // 0 -5- 1, 0 -1- 2 -1- 1: the two-hop path is shorter.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 5), (0, 2, 1), (2, 1, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d[1], 2);
    }

    #[test]
    fn parallel_edges_take_min() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 7), (0, 1, 3)]);
        assert_eq!(sssp(&g, 0)[1], 3);
    }

    #[test]
    fn hop_limit_binds() {
        // Path of weight-1 edges: 0-1-2-3; and a heavy direct edge 0-3.
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]);
        assert_eq!(hop_limited_pair(&g, 0, 3, 3), 3);
        assert_eq!(hop_limited_pair(&g, 0, 3, 2), 10);
        assert_eq!(hop_limited_pair(&g, 0, 3, 1), 10);
        let iso = WeightedGraph::from_edges(4, &[(0, 1, 1)]);
        assert_eq!(hop_limited_pair(&iso, 0, 3, 5), INF);
    }

    #[test]
    fn hop_limited_multi_source_agrees_with_single() {
        let g = generators::gnp(40, 0.1, &mut seeded(3));
        let wg = WeightedGraph::from_unweighted(&g);
        let sources = [0usize, 5, 17];
        let all = hop_limited_from_sources(&wg, &sources, 4);
        for (i, &s) in sources.iter().enumerate() {
            let single = hop_limited_from_sources(&wg, &[s], 4);
            for v in 0..g.n() {
                assert_eq!(all[v][i], single[v][0]);
            }
        }
    }

    #[test]
    fn enough_hops_equals_dijkstra() {
        let g = generators::gnp(30, 0.15, &mut seeded(9));
        let wg = WeightedGraph::from_unweighted(&g);
        let hops = g.n();
        let hl = hop_limited_from_sources(&wg, &[0], hops);
        let dj = sssp(&wg, 0);
        for v in 0..g.n() {
            assert_eq!(hl[v][0], dj[v]);
        }
    }

    /// Weight of a path (vertex sequence) in `g`, taking the minimum over
    /// parallel edges; panics if a hop is not an edge.
    fn path_weight(g: &WeightedGraph, path: &[usize]) -> Dist {
        path.windows(2)
            .map(|w| {
                g.neighbors(w[0])
                    .iter()
                    .filter(|&&(x, _)| x as usize == w[1])
                    .map(|&(_, wt)| wt)
                    .min()
                    .expect("consecutive path vertices are adjacent")
            })
            .sum()
    }

    #[test]
    fn tree_reconstructs_shortest_paths() {
        let g = generators::grid(5, 5);
        let wg = WeightedGraph::from_unweighted(&g);
        let tree = sssp_tree(&wg, 0);
        for v in 0..g.n() {
            let path = tree.path_to(v).expect("grid is connected");
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), v);
            // Path length (in weight) must equal the distance.
            assert_eq!(path_weight(&wg, &path), tree.dist(v), "path to {v}");
            let edges = tree.edges_to(v).unwrap();
            assert_eq!(edges.len(), path.len() - 1);
        }
    }

    #[test]
    fn unreachable_path_is_none() {
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 1)]);
        let tree = sssp_tree(&wg, 0);
        assert_eq!(tree.path_to(2), None);
        assert_eq!(tree.edges_to(2), None);
        assert_eq!(tree.path_to(0), Some(vec![0]));
        assert_eq!(tree.edges_to(0), Some(vec![]));
        assert_eq!(tree.parent(0), None);
        assert_eq!(tree.src(), 0);
    }

    #[test]
    fn parent_distances_agree_with_plain_sssp() {
        let g = generators::gnp(40, 0.12, &mut seeded(17));
        let wg = WeightedGraph::from_unweighted(&g);
        let tree = sssp_tree(&wg, 3);
        assert_eq!(tree.dists(), &sssp(&wg, 3)[..]);
    }

    #[test]
    fn hop_limited_parents_agree_and_chains_are_real_walks() {
        let g = generators::gnp(40, 0.1, &mut seeded(23));
        let mut wg = WeightedGraph::from_unweighted(&g);
        wg.add_edge(0, 30, 7); // a heavy shortcut exercises weighted hops
        let sources = [0usize, 5, 17];
        for h in [2usize, 4, 40] {
            let plain = hop_limited_from_sources(&wg, &sources, h);
            let (dist, parents) = hop_limited_from_sources_with_parents(&wg, &sources, h);
            assert_eq!(dist, plain, "h={h}: parents must not change distances");
            for (i, &s) in sources.iter().enumerate() {
                for v in 0..wg.n() {
                    if dist[v][i] >= INF {
                        assert_eq!(chain_from_hop_parents(&parents[i], s, v), None);
                        continue;
                    }
                    let chain = chain_from_hop_parents(&parents[i], s, v)
                        .unwrap_or_else(|| panic!("no chain for ({s},{v}) h={h}"));
                    assert_eq!(chain[0], s);
                    assert_eq!(*chain.last().unwrap(), v);
                    // The chain is a real walk of weight ≤ the reported
                    // distance (late relaxations can only shorten it).
                    assert!(path_weight(&wg, &chain) <= dist[v][i], "({s},{v}) h={h}");
                }
            }
        }
    }

    #[test]
    fn empty_graph_all_inf() {
        let g = Graph::from_edges(3, &[]);
        let wg = WeightedGraph::from_unweighted(&g);
        let d = sssp(&wg, 0);
        assert_eq!(d, vec![0, INF, INF]);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
