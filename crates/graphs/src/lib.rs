//! Graph substrate for the Congested Clique shortest-path reproduction.
//!
//! Provides:
//!
//! * [`Graph`] — a compact CSR representation of simple unweighted undirected
//!   graphs (the paper's input class), plus [`WeightedGraph`] for emulators,
//!   hopsets and unions `G ∪ H`.
//! * [`generators`] — deterministic and seeded-random graph families used by
//!   tests and experiments (G(n,p), cycles, grids, caveman graphs,
//!   preferential attachment, …).
//! * [`bfs`] / [`dijkstra`] — exact reference shortest-path algorithms used
//!   as ground truth (BFS, truncated balls, `(k,d)`-nearest reference,
//!   multi-source hop-limited Bellman–Ford, Dijkstra, exact APSP).
//! * [`stretch`] — utilities for comparing distance estimates against ground
//!   truth (multiplicative/additive stretch reports, distance buckets).
//!
//! # Example
//!
//! ```
//! use cc_graphs::{bfs, generators, Graph};
//!
//! let g: Graph = generators::cycle(8);
//! let d = bfs::sssp(&g, 0);
//! assert_eq!(d[4], 4);
//! assert_eq!(d[7], 1);
//! ```

// Unsafe is denied (not forbidden) so the one sanctioned exception — the
// `pod` module's byte-reinterpretation primitives behind validated
// constructors — can opt back in locally. Everything else stays safe.
#![deny(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bfs;
pub mod dijkstra;
pub mod dist;
pub mod generators;
pub mod graph;
pub mod io;
pub mod pod;
pub mod stretch;

pub use dist::{dadd, Dist, DistStorage, StorageKind, INF};
pub use graph::{Graph, WeightedGraph};
pub use pod::{
    AlignedBytes, ByteOwner, DirEntry, Pod, PodData, Section, SharedSlice, SECTION_ALIGN,
};
