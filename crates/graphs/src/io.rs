//! Plain-text graph interchange: whitespace edge lists and Graphviz DOT.
//!
//! Keeps experiments debuggable (dump a failing graph, re-load it in a
//! test) without adding serialization dependencies.

use std::fmt::Write as _;
use std::num::ParseIntError;

use crate::graph::{Graph, WeightedGraph};

/// Errors raised when parsing an edge list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// A non-comment line did not have exactly two fields.
    BadArity {
        /// 1-based line number.
        line: usize,
    },
    /// An endpoint failed to parse as an integer.
    BadVertex {
        /// 1-based line number.
        line: usize,
        /// The parse failure.
        source: ParseIntError,
    },
    /// Both endpoints of an edge were the same vertex. The graphs in this
    /// workspace are simple, so a self-loop in an input file is a data
    /// error rather than something to drop silently.
    SelfLoop {
        /// 1-based line number.
        line: usize,
        /// The offending vertex.
        vertex: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadArity { line } => {
                write!(f, "line {line}: expected exactly two vertex fields")
            }
            ParseError::BadVertex { line, source } => {
                write!(f, "line {line}: invalid vertex: {source}")
            }
            ParseError::SelfLoop { line, vertex } => {
                write!(
                    f,
                    "line {line}: self-loop at vertex {vertex} (graphs are simple)"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::BadVertex { source, .. } => Some(source),
            ParseError::BadArity { .. } | ParseError::SelfLoop { .. } => None,
        }
    }
}

/// Renders a graph as a `u v` edge list (one edge per line, `u < v`),
/// preceded by a `# n=<n> m=<m>` header comment.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# n={} m={}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses a `u v` edge list. Lines starting with `#` and blank lines are
/// ignored; the vertex count is `max endpoint + 1` (or `min_n` if larger).
///
/// Duplicate edges — including the same edge listed in both orientations,
/// as many interchange formats do — are collapsed to a single undirected
/// edge, so `from_edge_list` ∘ [`to_edge_list`] is the identity on graphs
/// and [`to_edge_list`] ∘ `from_edge_list` canonicalizes any valid edge
/// list (each edge once, `u < v`, as the `# n= m=` header claims).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines; self-loops are rejected with
/// [`ParseError::SelfLoop`] because the workspace's graphs are simple.
pub fn from_edge_list(text: &str, min_n: usize) -> Result<Graph, ParseError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_v = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(a), Some(b), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(ParseError::BadArity { line: idx + 1 });
        };
        let u: usize = a.parse().map_err(|source| ParseError::BadVertex {
            line: idx + 1,
            source,
        })?;
        let v: usize = b.parse().map_err(|source| ParseError::BadVertex {
            line: idx + 1,
            source,
        })?;
        if u == v {
            return Err(ParseError::SelfLoop {
                line: idx + 1,
                vertex: u,
            });
        }
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        min_n
    } else {
        (max_v + 1).max(min_n)
    };
    Ok(Graph::from_edges(n, &edges))
}

/// Renders a graph in Graphviz DOT format (undirected).
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a weighted graph in DOT format with edge-weight labels — handy
/// for inspecting small emulators and hopsets.
pub fn weighted_to_dot(g: &WeightedGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for (u, v, w) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v} [label=\"{w}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::grid(4, 3);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text, 0).unwrap();
        assert_eq!(back, g);
        // Text-level round trip: re-rendering the parsed graph reproduces
        // the canonical text exactly (header included).
        assert_eq!(to_edge_list(&back), text);
    }

    #[test]
    fn header_claims_hold_on_canonical_output() {
        let g = generators::caveman(4, 5);
        let text = to_edge_list(&g);
        let header = text.lines().next().unwrap();
        assert_eq!(header, format!("# n={} m={}", g.n(), g.m()));
        // Every edge line satisfies u < v and appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().skip(1) {
            let mut it = line.split_whitespace();
            let u: usize = it.next().unwrap().parse().unwrap();
            let v: usize = it.next().unwrap().parse().unwrap();
            assert!(u < v, "{line}");
            assert!(seen.insert((u, v)), "duplicate {line}");
        }
        assert_eq!(seen.len(), g.m());
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        // The same edge repeated — including both orientations — parses to
        // a single undirected edge, and re-rendering canonicalizes.
        let g = from_edge_list("0 1\n1 0\n0 1\n1 2\n", 0).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(to_edge_list(&g), "# n=3 m=2\n0 1\n1 2\n");
    }

    #[test]
    fn self_loops_are_rejected() {
        let err = from_edge_list("0 1\n2 2\n", 0).unwrap_err();
        assert_eq!(err, ParseError::SelfLoop { line: 2, vertex: 2 });
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = from_edge_list("# header\n\n0 1\n  \n1 2\n", 0).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn min_n_pads_isolated_vertices() {
        let g = from_edge_list("0 1\n", 5).unwrap();
        assert_eq!(g.n(), 5);
        let empty = from_edge_list("# nothing\n", 3).unwrap();
        assert_eq!(empty.n(), 3);
        assert_eq!(empty.m(), 0);
    }

    #[test]
    fn malformed_lines_are_reported() {
        let err = from_edge_list("0 1 2\n", 0).unwrap_err();
        assert_eq!(err, ParseError::BadArity { line: 1 });
        let err = from_edge_list("0\n", 0).unwrap_err();
        assert_eq!(err, ParseError::BadArity { line: 1 });
        let err = from_edge_list("0 x\n", 0).unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { line: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn dot_contains_all_edges() {
        let g = generators::cycle(4);
        let dot = to_dot(&g, "c4");
        assert!(dot.starts_with("graph c4 {"));
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn weighted_dot_has_labels() {
        let wg = crate::graph::WeightedGraph::from_edges(3, &[(0, 1, 7), (1, 2, 3)]);
        let dot = weighted_to_dot(&wg, "w");
        assert!(dot.contains("label=\"7\""));
        assert!(dot.contains("label=\"3\""));
    }
}
