//! Graph representations: unweighted CSR graphs and weighted adjacency
//! graphs.

use crate::dist::{Dist, INF};

/// A simple undirected unweighted graph in CSR (compressed sparse row) form.
///
/// Self-loops and parallel edges are removed at construction. Vertices are
/// dense indices `0..n`.
///
/// # Example
///
/// ```
/// use cc_graphs::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 1)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3); // duplicate collapsed
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Self-loops are
    /// dropped and duplicate edges collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n = {n}");
            if u == v {
                continue;
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self::from_adjacency(adj)
    }

    /// Builds a graph from per-vertex sorted, deduplicated adjacency lists.
    fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut targets = Vec::new();
        for list in adj {
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (v as usize) > u)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `true` if all vertices are reachable from vertex 0 (or `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v as usize);
                }
            }
        }
        count == n
    }

    /// Induced subgraph keeping only edges whose *both* endpoints satisfy the
    /// predicate on their degree in `self`, plus edges incident to vertices
    /// satisfying it — concretely, keeps every edge with at least one
    /// endpoint of degree ≤ `max_degree`. Used for the `G'` of Thm 34.
    pub fn low_degree_subgraph(&self, max_degree: usize) -> Graph {
        let edges: Vec<(usize, usize)> = self
            .edges()
            .filter(|&(u, v)| self.degree(u) <= max_degree || self.degree(v) <= max_degree)
            .collect();
        Graph::from_edges(self.n(), &edges)
    }
}

/// A weighted undirected graph with adjacency lists, used for emulators,
/// hopsets, and unions `G ∪ H` of the input graph with auxiliary weighted
/// edges.
///
/// Parallel edges are permitted (shortest-path routines take the minimum), so
/// `add_edge` is O(1).
///
/// # Example
///
/// ```
/// use cc_graphs::{Graph, WeightedGraph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let mut u = WeightedGraph::from_unweighted(&g);
/// u.add_edge(0, 2, 1); // shortcut
/// assert_eq!(u.n(), 3);
/// assert!(u.m() >= 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeightedGraph {
    adj: Vec<Vec<(u32, Dist)>>,
    m: usize,
}

impl WeightedGraph {
    /// Creates an empty weighted graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Converts an unweighted graph: every edge gets weight 1.
    pub fn from_unweighted(g: &Graph) -> Self {
        let mut wg = WeightedGraph::new(g.n());
        for (u, v) in g.edges() {
            wg.add_edge(u, v, 1);
        }
        wg
    }

    /// Builds from a weighted edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize, Dist)]) -> Self {
        let mut wg = WeightedGraph::new(n);
        for &(u, v, w) in edges {
            wg.add_edge(u, v, w);
        }
        wg
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Self-loops are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: Dist) {
        let n = self.n();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n = {n}");
        if u == v {
            return;
        }
        self.adj[u].push((v as u32, w));
        self.adj[v].push((u as u32, w));
        self.m += 1;
    }

    /// Merges all edges of `other` into `self` (graph union).
    ///
    /// # Panics
    ///
    /// Panics if vertex counts differ.
    pub fn union_with(&mut self, other: &WeightedGraph) {
        assert_eq!(self.n(), other.n(), "union of graphs of different order");
        for u in 0..other.n() {
            for &(v, w) in &other.adj[u] {
                if (v as usize) > u {
                    self.add_edge(u, v as usize, w);
                }
            }
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (parallel edges counted individually).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Weighted neighbor list of `v` (unsorted, may contain parallels).
    pub fn neighbors(&self, v: usize) -> &[(u32, Dist)] {
        &self.adj[v]
    }

    /// Iterates over undirected edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, Dist)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.adj[u]
                .iter()
                .filter(move |&&(v, _)| (v as usize) > u)
                .map(move |&(v, w)| (u, v as usize, w))
        })
    }

    /// The largest finite edge weight (0 for an empty graph).
    pub fn max_weight(&self) -> Dist {
        self.edges()
            .map(|(_, _, w)| w)
            .filter(|&w| w < INF)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction_dedups_and_sorts() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 2), (3, 1)]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (3, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let g = Graph::from_edges(1, &[]);
        assert!(g.is_connected());
    }

    #[test]
    fn low_degree_subgraph_keeps_incident_edges() {
        // Star on 5 vertices: center 0 has degree 4, leaves degree 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        // Leaves have degree ≤ 2, so all edges survive.
        let sub = g.low_degree_subgraph(2);
        assert_eq!(sub.m(), 4);
        // A triangle of degree-2 vertices bolted onto the star center.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let sub = g.low_degree_subgraph(1);
        // Vertex 3 has degree 1, so only (0,3) survives.
        assert_eq!(sub.edges().collect::<Vec<_>>(), vec![(0, 3)]);
    }

    #[test]
    fn weighted_union() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut a = WeightedGraph::from_unweighted(&g);
        let b = WeightedGraph::from_edges(3, &[(1, 2, 5)]);
        a.union_with(&b);
        assert_eq!(a.m(), 2);
        assert_eq!(a.max_weight(), 5);
    }

    #[test]
    fn weighted_self_loop_ignored() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(1, 1, 3);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "different order")]
    fn union_of_mismatched_orders_panics() {
        let mut a = WeightedGraph::new(2);
        let b = WeightedGraph::new(3);
        a.union_with(&b);
    }
}
